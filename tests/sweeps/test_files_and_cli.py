"""Tests for sweep-file loading and the ``repro`` CLI."""

import json

import pytest

from repro.cli import main
from repro.sweeps import SweepConfig, SweepFileError, load_sweep_file

SWEEP_DICT = {
    "name": "cli",
    "base": {"dataset": "blobs", "model": "mlp", "epochs": 1, "train_size": 48,
             "test_size": 16, "batch_size": 16, "num_classes": 3,
             "model_kwargs": {"hidden": [8]}},
    "grid": {"policy": ["posit(8,1)", "fp32"]},
    "workers": 1,
}

SWEEP_YAML = """\
# the same sweep, as YAML-lite
name: cli
base:
  dataset: blobs
  model: mlp
  epochs: 1
  train_size: 48
  test_size: 16
  batch_size: 16
  num_classes: 3
  model_kwargs:
    hidden: [8]
grid:
  policy: [posit(8,1), fp32]
workers: 1
"""


@pytest.fixture
def sweep_json(tmp_path):
    path = tmp_path / "sweep.json"
    path.write_text(json.dumps(SWEEP_DICT))
    return path


class TestSweepFiles:
    def test_json_and_yaml_load_identically(self, tmp_path, sweep_json):
        yaml_path = tmp_path / "sweep.yaml"
        yaml_path.write_text(SWEEP_YAML)
        from_json = SweepConfig.from_file(sweep_json)
        from_yaml = SweepConfig.from_file(yaml_path)
        assert [r.run_id for r in from_json.expand()] \
            == [r.run_id for r in from_yaml.expand()]

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(SweepFileError, match="cannot read"):
            load_sweep_file(tmp_path / "absent.json")

    def test_invalid_json_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(SweepFileError, match="invalid JSON"):
            load_sweep_file(path)

    def test_non_mapping_rejected(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2]")
        with pytest.raises(SweepFileError, match="mapping"):
            load_sweep_file(path)


class TestCli:
    def test_sweep_run_status_report(self, tmp_path, sweep_json, capsys):
        store = tmp_path / "out.jsonl"

        # status before running: pending cells -> nonzero exit.
        assert main(["sweep", "status", str(sweep_json), "--store", str(store)]) == 1
        assert "pending 2" in capsys.readouterr().out

        assert main(["sweep", "run", str(sweep_json), "--store", str(store),
                     "--serial", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "2 executed" in out

        # resume: nothing to do.
        assert main(["sweep", "run", str(sweep_json), "--store", str(store),
                     "--serial", "--quiet"]) == 0
        assert "0 executed, 2 skipped" in capsys.readouterr().out

        assert main(["sweep", "status", str(sweep_json), "--store", str(store)]) == 0
        assert "ok 2" in capsys.readouterr().out

        assert main(["sweep", "report", str(sweep_json), "--store", str(store),
                     "--group-by", "policy"]) == 0
        out = capsys.readouterr().out
        assert "posit(8,1)" in out and "fp32" in out
        assert "grouped by policy" in out

    def test_report_json_output(self, tmp_path, sweep_json, capsys):
        store = tmp_path / "out.jsonl"
        main(["sweep", "run", str(sweep_json), "--store", str(store),
              "--serial", "--quiet"])
        capsys.readouterr()
        assert main(["sweep", "report", str(sweep_json), "--store", str(store),
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["sweep"] == "cli"
        assert len(payload["rows"]) == 2

    def test_report_unknown_axis_fails_cleanly(self, tmp_path, sweep_json, capsys):
        store = tmp_path / "out.jsonl"
        main(["sweep", "run", str(sweep_json), "--store", str(store),
              "--serial", "--quiet"])
        capsys.readouterr()
        assert main(["sweep", "report", str(sweep_json), "--store", str(store),
                     "--group-by", "bogus"]) == 2
        assert "unknown group axis" in capsys.readouterr().err

    def test_formats_list(self, capsys):
        assert main(["formats", "list"]) == 0
        out = capsys.readouterr().out
        assert "posit(8,1)" in out
        assert "fp8_e4m3" in out
        assert "fixed(16,13)" in out

    def test_formats_list_family_filter(self, capsys):
        assert main(["formats", "list", "--family", "fixed", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows and all(row["family"] == "FixedPointFormat" for row in rows)

    def test_missing_sweep_file_exit_code(self, tmp_path, capsys):
        assert main(["sweep", "status", str(tmp_path / "none.json")]) == 2
        assert "error" in capsys.readouterr().err
