"""Tests for the append-only JSONL result store."""

import json

import pytest

from repro.sweeps import ResultStore


def make_record(run_id, status="ok", **extra):
    record = {"run_id": run_id, "status": status, "name": f"run-{run_id}"}
    record.update(extra)
    return record


class TestAppendLoad:
    def test_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        store.append(make_record("a", metrics={"final_val_accuracy": 0.5}))
        store.append(make_record("b", status="failed", error="boom"))

        fresh = ResultStore(tmp_path / "r.jsonl")
        records = fresh.load()
        assert set(records) == {"a", "b"}
        assert records["a"]["metrics"]["final_val_accuracy"] == 0.5
        assert fresh.completed_ids() == {"a"}
        assert fresh.failed_ids() == {"b"}

    def test_missing_file_is_empty(self, tmp_path):
        store = ResultStore(tmp_path / "nope.jsonl")
        assert store.load() == {}
        assert store.completed_ids() == set()

    def test_latest_record_wins(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        store.append(make_record("a", status="failed", error="first try"))
        store.append(make_record("a", status="ok"))
        fresh = ResultStore(tmp_path / "r.jsonl")
        assert fresh.completed_ids() == {"a"}
        assert fresh.failed_ids() == set()

    def test_append_requires_identity_fields(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        with pytest.raises(ValueError, match="run_id"):
            store.append({"status": "ok"})

    def test_creates_parent_directories(self, tmp_path):
        store = ResultStore(tmp_path / "deep" / "nested" / "r.jsonl")
        store.append(make_record("a"))
        assert (tmp_path / "deep" / "nested" / "r.jsonl").exists()


class TestCorruptionTolerance:
    def test_truncated_tail_is_skipped(self, tmp_path):
        path = tmp_path / "r.jsonl"
        store = ResultStore(path)
        store.append(make_record("a"))
        store.append(make_record("b"))
        # Simulate a writer killed mid-line.
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"run_id": "c", "stat')
        fresh = ResultStore(path)
        assert set(fresh.load()) == {"a", "b"}
        assert fresh.skipped_lines == 1

    def test_records_without_run_id_are_skipped(self, tmp_path):
        path = tmp_path / "r.jsonl"
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps({"status": "ok"}) + "\n")
            handle.write(json.dumps(make_record("a")) + "\n")
        store = ResultStore(path)
        assert set(store.load()) == {"a"}
        assert store.skipped_lines == 1


class TestCompact:
    def test_compact_drops_superseded_lines(self, tmp_path):
        path = tmp_path / "r.jsonl"
        store = ResultStore(path)
        store.append(make_record("a", status="failed", error="x"))
        store.append(make_record("a", status="ok"))
        store.append(make_record("b"))
        dropped = store.compact()
        assert dropped == 1
        lines = [json.loads(line) for line in open(path, encoding="utf-8")]
        assert {line["run_id"] for line in lines} == {"a", "b"}
        assert len(lines) == 2
        assert ResultStore(path).completed_ids() == {"a", "b"}
