"""Tests for sweep specs: expansion determinism, axes, run keys."""

import pytest

from repro.api import ExperimentConfig
from repro.sweeps import SweepAxis, SweepConfig, run_key
from repro.sweeps.spec import apply_override


def tiny_base(**overrides):
    defaults = dict(dataset="blobs", model="mlp", epochs=1, train_size=48,
                    test_size=16, batch_size=16, num_classes=3,
                    model_kwargs={"hidden": [8]})
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


def grid_sweep(**kwargs):
    return SweepConfig(
        name="unit",
        base=tiny_base(),
        grid=[SweepAxis.of("policy", ["posit(8,1)", "fp32"]),
              SweepAxis.of("lr", [0.05, 0.1])],
        **kwargs,
    )


class TestExpansion:
    def test_grid_size_and_order(self):
        runs = grid_sweep().expand()
        assert len(runs) == 4
        # Nested-loop order: last axis varies fastest.
        assert [run.overrides for run in runs] == [
            {"policy": "posit(8,1)", "lr": 0.05},
            {"policy": "posit(8,1)", "lr": 0.1},
            {"policy": "fp32", "lr": 0.05},
            {"policy": "fp32", "lr": 0.1},
        ]

    def test_expansion_is_deterministic(self):
        first = grid_sweep().expand()
        second = grid_sweep().expand()
        assert [run.run_id for run in first] == [run.run_id for run in second]
        assert [run.name for run in first] == [run.name for run in second]
        assert [run.config for run in first] == [run.config for run in second]

    def test_run_ids_are_content_hashes(self):
        runs = grid_sweep().expand()
        for run in runs:
            assert run.run_id == run_key(run.config)
        assert len({run.run_id for run in runs}) == 4

    def test_run_names_are_self_describing(self):
        names = [run.name for run in grid_sweep().expand()]
        assert names[0] == "unit/policy=posit(8,1),lr=0.05"
        assert all(name.startswith("unit/") for name in names)

    def test_zip_axes_advance_together(self):
        sweep = SweepConfig(
            name="zipped",
            base=tiny_base(),
            grid=[SweepAxis.of("model", ["mlp", "lenet"])],
            zipped=[SweepAxis.of("policy", ["posit(8,1)", "fp32"]),
                    SweepAxis.of("warmup_epochs", [1, 0])],
        )
        runs = sweep.expand()
        assert len(runs) == 4  # 2 grid x 2 zip, not 2 x 2 x 2
        combos = {(r.overrides["model"], r.overrides["policy"],
                   r.overrides["warmup_epochs"]) for r in runs}
        assert combos == {("mlp", "posit(8,1)", 1), ("mlp", "fp32", 0),
                          ("lenet", "posit(8,1)", 1), ("lenet", "fp32", 0)}

    def test_zip_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="equal lengths"):
            SweepConfig(name="bad", base=tiny_base(),
                        zipped=[SweepAxis.of("lr", [0.1, 0.2]),
                                SweepAxis.of("warmup_epochs", [0])])

    def test_no_axes_rejected(self):
        with pytest.raises(ValueError, match="no axes"):
            SweepConfig(name="empty", base=tiny_base())

    def test_duplicate_cells_rejected(self):
        sweep = SweepConfig(
            name="dupes", base=tiny_base(),
            grid=[SweepAxis.of("lr", [0.1, 0.1])])
        with pytest.raises(ValueError, match="duplicate run configs"):
            sweep.expand()

    def test_dotted_field_override(self):
        sweep = SweepConfig(
            name="dotted", base=tiny_base(),
            grid=[SweepAxis.of("model_kwargs.hidden", [[8], [8, 8]])])
        runs = sweep.expand()
        assert runs[0].config.model_kwargs["hidden"] == [8]
        assert runs[1].config.model_kwargs["hidden"] == [8, 8]
        # The axis label is the last dotted segment.
        assert runs[0].overrides == {"hidden": [8]}

    def test_nested_overrides_do_not_alias_across_cells(self):
        """Regression: 3+-segment dotted axes must not share inner dicts."""
        base = tiny_base(model_kwargs={"opt": {"width": 1}})
        sweep = SweepConfig(
            name="nested", base=base,
            grid=[SweepAxis.of("model_kwargs.opt.width", [1, 2])])
        runs = sweep.expand()
        assert runs[0].config.model_kwargs["opt"]["width"] == 1
        assert runs[1].config.model_kwargs["opt"]["width"] == 2
        # The caller's base config is untouched, and every run's content
        # hash still matches its actual config.
        assert base.model_kwargs == {"opt": {"width": 1}}
        for run in runs:
            assert run.run_id == run_key(run.config)

    def test_unknown_field_rejected(self):
        sweep = SweepConfig(name="typo", base=tiny_base(),
                            grid=[SweepAxis.of("leanring_rate", [0.1])])
        with pytest.raises(KeyError, match="leanring_rate"):
            sweep.expand()

    def test_len_matches_expansion(self):
        sweep = grid_sweep()
        assert len(sweep) == len(sweep.expand())


class TestRunKey:
    def test_cosmetic_fields_do_not_change_key(self):
        base = tiny_base()
        renamed = base.with_overrides(name="other", verbose=True)
        assert run_key(base) == run_key(renamed)

    def test_substantive_fields_change_key(self):
        base = tiny_base()
        assert run_key(base) != run_key(base.with_overrides(lr=0.123))
        assert run_key(base) != run_key(base.with_overrides(policy="posit(8,1)"))

    def test_key_is_stable_across_dict_roundtrip(self):
        base = tiny_base()
        assert run_key(base) == run_key(ExperimentConfig.from_dict(base.to_dict()))


class TestApplyOverride:
    def test_top_level(self):
        data = tiny_base().to_dict()
        apply_override(data, "lr", 0.5)
        assert data["lr"] == 0.5

    def test_nested_creates_intermediate(self):
        data = tiny_base().to_dict()
        apply_override(data, "data_kwargs.noise_std", 0.7)
        assert data["data_kwargs"]["noise_std"] == 0.7

    def test_non_dict_descent_rejected(self):
        data = tiny_base().to_dict()
        with pytest.raises(TypeError, match="not a dict"):
            apply_override(data, "lr.nested", 1)


class TestSerialization:
    def test_dict_roundtrip(self):
        sweep = grid_sweep(collect_energy=True, workers=3, store="out.jsonl")
        rebuilt = SweepConfig.from_dict(sweep.to_dict())
        assert [r.run_id for r in rebuilt.expand()] == [r.run_id for r in sweep.expand()]
        assert rebuilt.collect_energy is True
        assert rebuilt.workers == 3
        assert rebuilt.store == "out.jsonl"

    def test_unknown_keys_rejected(self):
        data = grid_sweep().to_dict()
        data["grdi"] = {"lr": [0.1]}
        with pytest.raises(ValueError, match="grdi"):
            SweepConfig.from_dict(data)

    def test_missing_name_or_base_rejected(self):
        with pytest.raises(ValueError, match="'name' and 'base'"):
            SweepConfig.from_dict({"grid": {"lr": [0.1]}})
