"""Tests for sweep execution: determinism, resume, failure isolation.

The training cells use the tiny blobs/MLP configuration (one epoch, a few
dozen samples) so the whole module stays fast while still exercising the
real :func:`repro.api.build_experiment` path end to end.
"""

import pytest

from repro.api import ExperimentConfig
from repro.sweeps import (
    ResultStore,
    SweepAxis,
    SweepConfig,
    result_rows,
    run_sweep,
    sweep_report,
    sweep_status,
)


def tiny_base():
    return ExperimentConfig(dataset="blobs", model="mlp", epochs=1,
                            train_size=48, test_size=16, batch_size=16,
                            num_classes=3, model_kwargs={"hidden": [8]})


def tiny_sweep(name="runner", values=("posit(8,1)", "fp32"), lrs=(0.05, 0.1)):
    return SweepConfig(
        name=name,
        base=tiny_base(),
        grid=[SweepAxis.of("policy", values), SweepAxis.of("lr", lrs)],
    )


class TestSerialExecution:
    def test_all_cells_complete(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        summary = run_sweep(tiny_sweep(), store=store, workers=1)
        assert summary.total == 4
        assert summary.executed == 4
        assert summary.skipped == 0
        assert summary.failed == 0
        assert summary.ok
        assert store.completed_ids() == {r.run_id for r in tiny_sweep().expand()}

    def test_records_carry_metrics_and_formats(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        run_sweep(tiny_sweep(), store=store, workers=1)
        for record in store:
            assert record["status"] == "ok"
            assert record["metrics"]["epochs"] == 1
            assert record["metrics"]["final_val_accuracy"] is not None
            assert record["formats"] in (["posit(8,1)"], ["fp32"])

    def test_identical_cells_produce_identical_metrics(self, tmp_path):
        """Same spec -> same results, regardless of which invocation ran it."""
        first = ResultStore(tmp_path / "a.jsonl")
        second = ResultStore(tmp_path / "b.jsonl")
        run_sweep(tiny_sweep(), store=first, workers=1)
        run_sweep(tiny_sweep(), store=second, workers=1)
        left = {rid: rec["metrics"] for rid, rec in first.records().items()}
        right = {rid: rec["metrics"] for rid, rec in second.records().items()}
        assert left == right


class TestResume:
    def test_second_invocation_executes_nothing(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        run_sweep(tiny_sweep(), store=store, workers=1)
        again = run_sweep(tiny_sweep(), store=store, workers=1)
        assert again.executed == 0
        assert again.skipped == 4
        assert again.ok

    def test_kill_and_rerun_completes_only_missing(self, tmp_path):
        """A store holding a prefix of the records resumes the remainder."""
        full = ResultStore(tmp_path / "full.jsonl")
        run_sweep(tiny_sweep(), store=full, workers=1)
        all_records = full.records()
        runs = tiny_sweep().expand()

        partial = ResultStore(tmp_path / "partial.jsonl")
        survivors = [runs[0].run_id, runs[2].run_id]
        for run_id in survivors:
            partial.append(all_records[run_id])

        summary = run_sweep(tiny_sweep(), store=partial, workers=1)
        assert summary.skipped == 2
        assert summary.executed == 2
        executed_ids = {o.run_id for o in summary.outcomes if o.status == "ok"}
        assert executed_ids == {runs[1].run_id, runs[3].run_id}
        # And the resumed store converges to the same records as the full run.
        assert {rid: rec["metrics"] for rid, rec in partial.records().items()} \
            == {rid: rec["metrics"] for rid, rec in all_records.items()}

    def test_failed_runs_are_retried(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        runs = tiny_sweep().expand()
        store.append({"run_id": runs[0].run_id, "name": runs[0].name,
                      "status": "failed", "error": "previous crash"})
        summary = run_sweep(tiny_sweep(), store=store, workers=1)
        assert summary.executed == 4  # the failed cell ran again
        assert store.completed_ids() == {r.run_id for r in runs}


class TestFailureIsolation:
    def bad_sweep(self, name="faulty"):
        # "no_such_model" fails inside build_experiment; the other cells
        # must be unaffected.
        return SweepConfig(
            name=name,
            base=tiny_base(),
            grid=[SweepAxis.of("model", ["mlp", "no_such_model"]),
                  SweepAxis.of("lr", [0.05, 0.1])],
        )

    def test_one_bad_cell_does_not_poison_serial_run(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        summary = run_sweep(self.bad_sweep(), store=store, workers=1)
        assert summary.executed == 2
        assert summary.failed == 2
        failed = [store.get(o.run_id) for o in summary.outcomes if o.status == "failed"]
        assert all("no_such_model" in record["error"] for record in failed)
        assert all("traceback" in record for record in failed)

    def test_one_bad_cell_does_not_poison_the_pool(self, tmp_path):
        """The multiprocessing path records failures and finishes the rest."""
        store = ResultStore(tmp_path / "s.jsonl")
        summary = run_sweep(self.bad_sweep(), store=store, workers=2)
        assert summary.executed == 2
        assert summary.failed == 2
        assert store.completed_ids() != set()
        # Retrying with the model fixed completes only the failed cells.
        fixed = SweepConfig(name="faulty", base=tiny_base(),
                            grid=[SweepAxis.of("model", ["mlp"]),
                                  SweepAxis.of("lr", [0.05, 0.1])])
        resumed = run_sweep(fixed, store=store, workers=1)
        assert resumed.executed == 0
        assert resumed.skipped == 2


class TestParallelExecution:
    def test_parallel_matches_serial(self, tmp_path):
        serial = ResultStore(tmp_path / "serial.jsonl")
        parallel = ResultStore(tmp_path / "parallel.jsonl")
        run_sweep(tiny_sweep(), store=serial, workers=1)
        summary = run_sweep(tiny_sweep(), store=parallel, workers=2)
        assert summary.executed == 4
        left = {rid: rec["metrics"] for rid, rec in serial.records().items()}
        right = {rid: rec["metrics"] for rid, rec in parallel.records().items()}
        assert left == right


class TestStatusAndReport:
    def test_status_counts(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        sweep = tiny_sweep()
        status = sweep_status(sweep, store=store)
        assert status["pending"] == 4 and status["ok"] == 0
        run_sweep(sweep, store=store, workers=1)
        status = sweep_status(sweep, store=store)
        assert status["ok"] == 4 and status["pending"] == 0

    def test_report_rows_follow_sweep_order(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        sweep = tiny_sweep()
        run_sweep(sweep, store=store, workers=1)
        rows = result_rows(store, sweep=sweep)
        assert [row["run_id"] for row in rows] == [r.run_id for r in sweep.expand()]
        assert all("final_val_accuracy" in row for row in rows)

    def test_grouped_report(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        sweep = tiny_sweep()
        run_sweep(sweep, store=store, workers=1)
        report = sweep_report(sweep, store=store, group="policy")
        assert {entry["policy"] for entry in report["grouped"]} == {"posit(8,1)", "fp32"}
        assert all(entry["runs"] == 2 for entry in report["grouped"])

    def test_pivot_report(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        sweep = tiny_sweep()
        run_sweep(sweep, store=store, workers=1)
        report = sweep_report(sweep, store=store, group="policy x lr")
        pivoted = report["pivot"]
        assert pivoted["rows"] == ["posit(8,1)", "fp32"]
        assert pivoted["cols"] == [0.05, 0.1]
        for row in pivoted["rows"]:
            for col in pivoted["cols"]:
                assert pivoted["cells"][row][col] is not None

    def test_unknown_group_axis_rejected(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        sweep = tiny_sweep()
        run_sweep(sweep, store=store, workers=1)
        with pytest.raises(ValueError, match="unknown group axis"):
            sweep_report(sweep, store=store, group="nonsense")


class TestEnergyCollection:
    def test_energy_metrics_attached(self, tmp_path):
        sweep = SweepConfig(
            name="energy", base=tiny_base(), collect_energy=True,
            grid=[SweepAxis.of("policy", ["posit(8,1)", "fixed(16,13)", "fp32"])])
        store = ResultStore(tmp_path / "s.jsonl")
        summary = run_sweep(sweep, store=store, workers=1)
        assert summary.failed == 0
        by_policy = {rec["overrides"]["policy"]: rec for rec in store}
        for record in by_policy.values():
            assert record["energy"]["total_energy_uj"] > 0
        # FP32 saves nothing over itself; quantized formats save energy.
        assert by_policy["fp32"]["energy"]["energy_saving_vs_fp32"] == pytest.approx(1.0)
        assert by_policy["posit(8,1)"]["energy"]["energy_saving_vs_fp32"] > 1.0
        assert by_policy["fixed(16,13)"]["energy"]["energy_saving_vs_fp32"] > 1.0
