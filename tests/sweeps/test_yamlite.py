"""Tests for the YAML-lite subset parser behind sweep files."""

import pytest

from repro.sweeps.yamlite import YamliteError, loads


class TestScalars:
    def test_typed_scalars(self):
        text = """
        an_int: 42
        a_float: 0.05
        scientific: 1e-3
        negative: -7
        truthy: true
        falsy: false
        nothing: null
        tilde: ~
        bare: posit(8,1)
        quoted_number: "8"
        single: 'hash # not a comment'
        """
        data = loads("\n".join(line[8:] for line in text.splitlines()))
        assert data == {
            "an_int": 42, "a_float": 0.05, "scientific": 1e-3, "negative": -7,
            "truthy": True, "falsy": False, "nothing": None, "tilde": None,
            "bare": "posit(8,1)", "quoted_number": "8",
            "single": "hash # not a comment",
        }

    def test_comments_and_blank_lines(self):
        data = loads("# header\n\nkey: 1  # trailing\nother: two\n")
        assert data == {"key": 1, "other": "two"}


class TestStructures:
    def test_nested_mappings(self):
        data = loads("base:\n  model: mlp\n  model_kwargs:\n    hidden: [8, 8]\nname: x\n")
        assert data == {"base": {"model": "mlp", "model_kwargs": {"hidden": [8, 8]}},
                        "name": "x"}

    def test_flow_lists(self):
        data = loads("grid:\n  policy: [posit(8,1), 'fixed(16,13)', fp32]\n  lr: [0.05, 0.1]\n")
        assert data["grid"]["policy"] == ["posit(8,1)", "fixed(16,13)", "fp32"]
        assert data["grid"]["lr"] == [0.05, 0.1]

    def test_block_lists(self):
        data = loads("values:\n  - 1\n  - 2.5\n  - posit(8,1)\n")
        assert data == {"values": [1, 2.5, "posit(8,1)"]}

    def test_empty_input(self):
        assert loads("") == {}
        assert loads("# only comments\n") == {}

    def test_empty_flow_list(self):
        assert loads("empty: []\n") == {"empty": []}


class TestErrors:
    def test_tabs_rejected(self):
        with pytest.raises(YamliteError, match="tabs"):
            loads("key:\n\tvalue: 1\n")

    def test_duplicate_keys_rejected(self):
        with pytest.raises(YamliteError, match="duplicate key"):
            loads("a: 1\na: 2\n")

    def test_anchors_rejected(self):
        with pytest.raises(YamliteError, match="unsupported"):
            loads("a: &anchor 1\n")

    def test_unterminated_quote_rejected(self):
        with pytest.raises(YamliteError, match="unterminated"):
            loads("a: 'oops\n")

    def test_unterminated_flow_list_rejected(self):
        with pytest.raises(YamliteError, match="unterminated flow list"):
            loads("a: [1, 2\n")

    def test_error_names_line(self):
        with pytest.raises(YamliteError, match="line 2"):
            loads("a: 1\nb &bad\n")
