"""Tests for the energy/accuracy Pareto report and its CLI."""

import json

import pytest

from repro.cli import main as cli_main
from repro.sweeps import ResultStore, format_csv, pareto_front


def rows():
    # cost/benefit pairs: a dominates d; b and c are incomparable with a.
    return [
        {"name": "a", "total_energy_uj": 1.0, "final_val_accuracy": 0.80},
        {"name": "b", "total_energy_uj": 2.0, "final_val_accuracy": 0.90},
        {"name": "c", "total_energy_uj": 0.5, "final_val_accuracy": 0.70},
        {"name": "d", "total_energy_uj": 1.5, "final_val_accuracy": 0.75},
        {"name": "no-energy", "final_val_accuracy": 0.99},
    ]


def test_front_members_and_order():
    front = pareto_front(rows())
    assert [row["name"] for row in front] == ["c", "a", "b"]
    assert all(row["pareto"] for row in front)


def test_dominated_rows_flagged():
    annotated = pareto_front(rows(), keep_dominated=True)
    by_name = {row["name"]: row["pareto"] for row in annotated}
    assert by_name == {"c": True, "a": True, "b": True, "d": False}


def test_rows_missing_metrics_excluded():
    assert all(row["name"] != "no-energy" for row in
               pareto_front(rows(), keep_dominated=True))


def test_duplicate_points_both_survive():
    twin = [{"name": "x", "total_energy_uj": 1.0, "final_val_accuracy": 0.8},
            {"name": "y", "total_energy_uj": 1.0, "final_val_accuracy": 0.8}]
    front = pareto_front(twin)
    assert {row["name"] for row in front} == {"x", "y"}


def test_custom_axes():
    data = [{"latency": 10.0, "throughput": 100.0},
            {"latency": 5.0, "throughput": 50.0},
            {"latency": 12.0, "throughput": 90.0}]
    front = pareto_front(data, cost="latency", benefit="throughput")
    assert len(front) == 2  # the 12ms/90rps point is dominated


def test_format_csv_quoting():
    text = format_csv([{"a": 'x,"y"', "b": 1}])
    assert text.splitlines()[0] == "a,b"
    assert '"x,""y"""' in text


# --------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------- #
@pytest.fixture
def sweep_file(tmp_path):
    spec = {
        "name": "pareto_cli",
        "base": {"dataset": "blobs", "model": "mlp", "epochs": 1,
                 "train_size": 32, "test_size": 16, "batch_size": 8,
                 "num_classes": 3, "model_kwargs": {"hidden": [4]}},
        "grid": {"policy": ["posit(8,1)", "posit(16,1)"]},
        "collect_energy": True,
    }
    path = tmp_path / "sweep.json"
    path.write_text(json.dumps(spec))
    return path


def store_with_results(sweep_file, tmp_path):
    from repro.sweeps import SweepConfig

    sweep = SweepConfig.from_file(sweep_file)
    store = ResultStore(tmp_path / "results.jsonl")
    for index, run in enumerate(sweep.expand()):
        store.append({
            "run_id": run.run_id, "name": run.name, "status": "ok",
            "index": run.index, "overrides": run.overrides,
            "config": run.config.to_dict(),
            "metrics": {"final_val_accuracy": 0.9 - 0.1 * index},
            "energy": {"total_energy_uj": 1.0 + index},
        })
    return store


def test_cli_pareto_table(sweep_file, tmp_path, capsys):
    store = store_with_results(sweep_file, tmp_path)
    code = cli_main(["sweep", "pareto", str(sweep_file), "--store", store.path])
    out = capsys.readouterr().out
    assert code == 0
    assert "pareto front" in out
    assert "total_energy_uj" in out


def test_cli_pareto_csv(sweep_file, tmp_path, capsys):
    store = store_with_results(sweep_file, tmp_path)
    code = cli_main(["sweep", "pareto", str(sweep_file), "--store", store.path,
                     "--csv", "--all"])
    out = capsys.readouterr().out
    assert code == 0
    lines = out.strip().splitlines()
    assert lines[0].startswith("policy,")
    assert len(lines) == 3  # header + both runs


def test_cli_pareto_json(sweep_file, tmp_path, capsys):
    store = store_with_results(sweep_file, tmp_path)
    code = cli_main(["sweep", "pareto", str(sweep_file), "--store", store.path,
                     "--json"])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert all("pareto" in row for row in payload)


def test_cli_pareto_without_energy_errors(sweep_file, tmp_path, capsys):
    from repro.sweeps import SweepConfig

    sweep = SweepConfig.from_file(sweep_file)
    store = ResultStore(tmp_path / "noenergy.jsonl")
    run = sweep.expand()[0]
    store.append({"run_id": run.run_id, "name": run.name, "status": "ok",
                  "index": 0, "overrides": run.overrides,
                  "config": run.config.to_dict(),
                  "metrics": {"final_val_accuracy": 0.5}})
    code = cli_main(["sweep", "pareto", str(sweep_file), "--store", store.path])
    assert code == 2
    assert "collect_energy" in capsys.readouterr().err
