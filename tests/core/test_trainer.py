"""Tests for the PositTrainer: Fig. 3 insertion points, warm-up, and training runs."""

import numpy as np
import pytest

from repro.core import PositTrainer, QuantizationPolicy, WarmupSchedule
from repro.data import ArrayDataLoader, make_blobs
from repro.models import MLP, tiny_resnet
from repro.nn import CrossEntropyLoss, LossScaler
from repro.optim import SGD, MultiStepLR
from repro.posit import PositConfig, quantize


def blob_loaders(batch_size=32, seed=0):
    points, labels = make_blobs(num_samples=256, num_classes=4, spread=0.5, seed=seed)
    mean, std = points.mean(axis=0), points.std(axis=0)
    points = (points - mean) / std
    # make_blobs emits samples grouped by class; shuffle before splitting so
    # the train and validation splits share the same class distribution.
    order = np.random.default_rng(seed).permutation(len(points))
    points, labels = points[order], labels[order]
    train = ArrayDataLoader(points[:192], labels[:192], batch_size=batch_size, seed=seed)
    val = ArrayDataLoader(points[192:], labels[192:], batch_size=64, shuffle=False)
    return train, val


def make_mlp_trainer(policy=None, warmup=0, lr=0.1, seed=0, **kwargs):
    model = MLP(2, hidden=(32, 16), num_classes=4, rng=np.random.default_rng(seed))
    optimizer = SGD(model.parameters(), lr=lr, momentum=0.9)
    return PositTrainer(model, optimizer, CrossEntropyLoss(), policy=policy,
                        warmup=WarmupSchedule(warmup), **kwargs)


class TestTrainerWiring:
    def test_fp32_trainer_has_no_contexts(self):
        trainer = make_mlp_trainer(policy=None)
        assert trainer.contexts == {}
        assert not trainer.quantization_active

    def test_policy_attaches_contexts(self):
        trainer = make_mlp_trainer(policy=QuantizationPolicy.uniform(8))
        assert len(trainer.contexts) == 3  # three Linear layers in the MLP

    def test_optimizer_hooks_installed(self):
        trainer = make_mlp_trainer(policy=QuantizationPolicy.uniform(8))
        assert trainer.optimizer.grad_transform is not None
        assert trainer.optimizer.param_transform is not None

    def test_warmup_disables_quantization_at_start(self):
        trainer = make_mlp_trainer(policy=QuantizationPolicy.uniform(8), warmup=2)
        assert not trainer.quantization_active

    def test_no_warmup_enables_quantization_immediately(self):
        trainer = make_mlp_trainer(policy=QuantizationPolicy.uniform(8), warmup=0)
        assert trainer.quantization_active

    def test_describe(self):
        trainer = make_mlp_trainer(policy=QuantizationPolicy.uniform(8), warmup=1)
        description = trainer.describe()
        assert description["warmup"] == {"warmup_epochs": 1}
        assert len(description["quantized_layers"]) == 3


class TestFig3InsertionPoints:
    """After a quantized training step, every Fig. 3 tensor lies on the posit grid."""

    def test_weights_on_posit_grid_after_step(self):
        config = PositConfig(8, 1)
        policy = QuantizationPolicy.uniform(8, use_scaling=False)
        trainer = make_mlp_trainer(policy=policy, warmup=0, lr=0.05)
        train, _ = blob_loaders()
        trainer.train_epoch(train, epoch=0)
        for param in trainer.model.parameters():
            np.testing.assert_array_equal(
                param.data, np.asarray(quantize(param.data, config)),
                err_msg="stored weights must be posit values after the update (Fig. 3c)",
            )

    def test_weights_scaled_grid_with_shifting(self):
        """With Eq. (3) shifting, weights equal Sf times representable posits."""
        policy = QuantizationPolicy.uniform(8, use_scaling=True, scale_mode="dynamic")
        trainer = make_mlp_trainer(policy=policy, warmup=0, lr=0.05)
        train, _ = blob_loaders()
        trainer.train_epoch(train, epoch=0)
        config = PositConfig(8, 1)
        for name, module in trainer.model.named_modules():
            context = module.quant
            if context is None:
                continue
            weight = module._parameters["weight"].data
            scale = context.scalers["weight"].scale_for(weight)
            np.testing.assert_allclose(
                weight / scale, np.asarray(quantize(weight / scale, config)), atol=0)

    def test_gradients_quantized_before_update(self):
        """The ΔW hook produces posit-grid gradients (Fig. 3b)."""
        captured = []
        policy = QuantizationPolicy.uniform(8, use_scaling=False)
        trainer = make_mlp_trainer(policy=policy, warmup=0)
        original_transform = trainer.optimizer.grad_transform

        def spy(grad, param):
            result = original_transform(grad, param)
            captured.append(result)
            return result

        trainer.optimizer.grad_transform = spy
        train, _ = blob_loaders()
        trainer.train_epoch(train, epoch=0)
        assert captured
        config = PositConfig(8, 2)
        for grad in captured[:5]:
            np.testing.assert_array_equal(grad, np.asarray(quantize(grad, config)))

    def test_fp32_trainer_weights_not_on_grid(self):
        trainer = make_mlp_trainer(policy=None, lr=0.05)
        train, _ = blob_loaders()
        trainer.train_epoch(train, epoch=0)
        config = PositConfig(8, 1)
        on_grid = all(
            np.array_equal(p.data, np.asarray(quantize(p.data, config)))
            for p in trainer.model.parameters()
        )
        assert not on_grid


class TestWarmupBehaviour:
    def test_epoch_records_mark_quantized_phase(self):
        policy = QuantizationPolicy.uniform(8)
        trainer = make_mlp_trainer(policy=policy, warmup=2, lr=0.05)
        train, val = blob_loaders()
        history = trainer.fit(train, val, epochs=4)
        assert [r.quantized for r in history] == [False, False, True, True]

    def test_calibration_runs_at_transition(self):
        policy = QuantizationPolicy.uniform(8, scale_mode="calibrated")
        trainer = make_mlp_trainer(policy=policy, warmup=1, lr=0.05)
        train, _ = blob_loaders()
        trainer.fit(train, epochs=2)
        centers = [c.scalers["weight"].calibrated_center for c in trainer.contexts.values()]
        assert all(center is not None for center in centers)

    def test_manual_calibration_returns_scales(self):
        policy = QuantizationPolicy.uniform(8, scale_mode="calibrated")
        trainer = make_mlp_trainer(policy=policy, warmup=0)
        scales = trainer.calibrate_scale_factors()
        assert len(scales) == 3
        assert all(s > 0 for s in scales.values())


class TestTrainingRuns:
    def test_fp32_learns_blobs(self):
        trainer = make_mlp_trainer(policy=None, lr=0.1)
        train, val = blob_loaders()
        history = trainer.fit(train, val, epochs=15)
        assert history.final_val_accuracy > 0.9

    def test_posit16_matches_fp32_on_blobs(self):
        """The core Table III claim at toy scale: 16-bit posit ~= FP32."""
        train, val = blob_loaders()
        fp32 = make_mlp_trainer(policy=None, lr=0.1, seed=1)
        fp32_history = fp32.fit(train, val, epochs=15)

        train, val = blob_loaders()
        posit = make_mlp_trainer(policy=QuantizationPolicy.imagenet_paper(), warmup=1,
                                 lr=0.1, seed=1)
        posit_history = posit.fit(train, val, epochs=15)
        assert posit_history.final_val_accuracy >= fp32_history.final_val_accuracy - 0.05

    def test_scheduler_steps_per_epoch(self):
        model = MLP(2, hidden=(8,), num_classes=4, rng=np.random.default_rng(0))
        optimizer = SGD(model.parameters(), lr=0.1, momentum=0.9)
        scheduler = MultiStepLR(optimizer, milestones=(2,), gamma=0.1)
        trainer = PositTrainer(model, optimizer, CrossEntropyLoss(), scheduler=scheduler)
        train, _ = blob_loaders()
        history = trainer.fit(train, epochs=4)
        assert history[0].learning_rate == pytest.approx(0.1)
        assert history[3].learning_rate == pytest.approx(0.01)

    def test_epoch_callbacks_invoked(self):
        seen = []
        trainer = make_mlp_trainer(policy=None)
        trainer.epoch_callbacks.append(lambda tr, epoch, record: seen.append(epoch))
        train, _ = blob_loaders()
        trainer.fit(train, epochs=3)
        assert seen == [0, 1, 2]

    def test_evaluate_does_not_touch_weights(self):
        trainer = make_mlp_trainer(policy=None)
        train, val = blob_loaders()
        before = [p.data.copy() for p in trainer.model.parameters()]
        trainer.evaluate(val)
        for original, param in zip(before, trainer.model.parameters()):
            np.testing.assert_array_equal(original, param.data)

    def test_loss_scaler_path_trains(self):
        from repro.baselines import fp16_policy

        trainer = make_mlp_trainer(policy=fp16_policy(), warmup=0, lr=0.1,
                                   loss_scaler=LossScaler(scale=128.0))
        train, val = blob_loaders()
        history = trainer.fit(train, val, epochs=10)
        assert history.final_val_accuracy > 0.8

    def test_resnet_single_quantized_step_runs(self, rng):
        """End-to-end smoke test with conv/BN layers under the Cifar policy."""
        model = tiny_resnet(base_width=4, rng=rng)
        optimizer = SGD(model.parameters(), lr=0.01, momentum=0.9)
        trainer = PositTrainer(model, optimizer, CrossEntropyLoss(),
                               policy=QuantizationPolicy.cifar_paper(),
                               warmup=WarmupSchedule(0))
        images = rng.standard_normal((8, 3, 16, 16))
        labels = rng.integers(0, 10, 8)
        loader = ArrayDataLoader(images, labels, batch_size=8, shuffle=False)
        loss, accuracy = trainer.train_epoch(loader, epoch=0)
        assert np.isfinite(loss)
        assert 0.0 <= accuracy <= 1.0
