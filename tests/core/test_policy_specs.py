"""Declarative policy construction: spec strings and dicts are equivalent to objects.

Acceptance regression for the NumberFormat/registry redesign: the paper
preset built from objects, the same policy round-tripped through its dict
form, and a policy assembled purely from spec strings must all produce
bit-identical quantized tensors; and a fixed-point format must train
end-to-end through PositTrainer like any other format.
"""

import numpy as np
import pytest

from repro.core import PositTrainer, QuantizationPolicy, RoleFormats, WarmupSchedule
from repro.data import ArrayDataLoader, make_spirals
from repro.formats import FixedPointFormat
from repro.models import MLP, tiny_resnet
from repro.nn import CrossEntropyLoss
from repro.optim import SGD
from repro.posit import FP16, PositConfig
from repro.tensor import Tensor

#: The cifar_paper() assignment written out as plain spec strings.
CIFAR_PAPER_SPEC_DICT = {
    "conv": {"weight": "posit(8,1)", "activation": "posit(8,1)",
             "error": "posit(8,2)", "weight_grad": "posit(8,2)"},
    "bn": {"weight": "posit(16,1)", "activation": "posit(16,1)",
           "error": "posit(16,2)", "weight_grad": "posit(16,2)"},
    "linear": {"weight": "posit(8,1)", "activation": "posit(8,1)",
               "error": "posit(8,2)", "weight_grad": "posit(8,2)"},
    "rounding": "zero",
    "use_scaling": True,
    "sigma": 2,
    "scale_mode": "dynamic",
}


def _forward_and_grads(policy: QuantizationPolicy):
    """Train-mode forward logits + one quantized weight-gradient hook output."""
    model = tiny_resnet(rng=np.random.default_rng(0))
    contexts = policy.attach(model)
    model.train(True)
    images = np.random.default_rng(42).standard_normal((4, 3, 8, 8))
    logits = model(Tensor(images)).data.copy()
    grads = np.random.default_rng(43).standard_normal((8, 3, 3, 3)) * 1e-3
    context = next(iter(contexts.values()))
    quantized_grads = context.weight_grad(grads)
    QuantizationPolicy.detach(model)
    return logits, quantized_grads


class TestConstructionEquivalence:
    def test_object_dict_and_spec_policies_are_bit_identical(self):
        object_policy = QuantizationPolicy.cifar_paper()
        dict_policy = QuantizationPolicy.from_dict(object_policy.to_dict())
        spec_policy = QuantizationPolicy.from_dict(CIFAR_PAPER_SPEC_DICT)

        reference_logits, reference_grads = _forward_and_grads(object_policy)
        for other in (dict_policy, spec_policy):
            logits, grads = _forward_and_grads(other)
            np.testing.assert_array_equal(logits, reference_logits)
            np.testing.assert_array_equal(grads, reference_grads)

    def test_cifar_paper_round_trips_through_dict(self):
        policy = QuantizationPolicy.cifar_paper()
        rebuilt = QuantizationPolicy.from_dict(policy.to_dict())
        assert rebuilt.conv_formats == policy.conv_formats
        assert rebuilt.bn_formats == policy.bn_formats
        assert rebuilt.linear_formats == policy.linear_formats
        assert rebuilt.describe() == policy.describe()
        assert rebuilt.to_dict() == policy.to_dict()

    def test_float_and_fixed_policies_round_trip(self):
        formats = RoleFormats(weight=FP16, activation=FP16,
                              error=FixedPointFormat(2, 13), weight_grad=None)
        policy = QuantizationPolicy(conv_formats=formats, use_scaling=False)
        rebuilt = QuantizationPolicy.from_dict(policy.to_dict())
        assert rebuilt.conv_formats == formats
        assert rebuilt.to_dict() == policy.to_dict()

    def test_seed_survives_round_trip(self):
        policy = QuantizationPolicy.cifar_paper(rounding="stochastic", seed=11)
        assert QuantizationPolicy.from_dict(policy.to_dict()).seed == 11

    def test_explicit_fp32_format_role_does_not_collapse_to_none(self):
        # An FP32 FloatFormat role means "fake-quantize through the float32
        # grid"; its dict form must rebuild a quantizing format, not the
        # no-quantizer None that the "fp32" synonym denotes.
        from repro.posit import FP32

        formats = RoleFormats(weight=FP32)
        rebuilt = RoleFormats.from_dict(formats.as_dict())
        assert rebuilt.weight is not None
        assert rebuilt.weight.exponent_bits == FP32.exponent_bits
        assert rebuilt.weight.mantissa_bits == FP32.mantissa_bits


class TestRoleFormatsSpecs:
    def test_from_specs_mixes_strings_objects_and_none(self):
        formats = RoleFormats.from_specs(weight="posit(8,1)", activation=PositConfig(8, 1),
                                         error="fp32", weight_grad=None)
        assert formats.weight == PositConfig(8, 1)
        assert formats.activation == PositConfig(8, 1)
        assert formats.error is None and formats.weight_grad is None

    def test_fp32_spec_means_no_quantizer(self):
        formats = RoleFormats.from_dict({"weight": "fp32"})
        assert formats.weight is None

    def test_unknown_role_rejected(self):
        with pytest.raises(ValueError, match="unknown tensor roles"):
            RoleFormats.from_dict({"weights": "posit(8,1)"})

    def test_as_dict_uses_round_trippable_specs(self):
        formats = RoleFormats(weight=FP16, activation=FixedPointFormat(2, 5),
                              error=PositConfig(8, 2), weight_grad=None)
        assert formats.as_dict() == {
            "weight": "fp16",
            "activation": "fixed(8,5)",
            "error": "posit(8,2)",
            "weight_grad": "fp32",
        }
        assert RoleFormats.from_dict(formats.as_dict()) == formats

    def test_uniform_helper(self):
        formats = RoleFormats.uniform("fixed(16,13)")
        assert formats.weight == FixedPointFormat(2, 13)
        assert formats.weight == formats.activation == formats.error == formats.weight_grad


class TestFixedPointEndToEnd:
    """FixedPointFormat participates in a policy through PositTrainer."""

    def _loaders(self):
        points, labels = make_spirals(num_samples=96, num_classes=3, seed=0)
        return ArrayDataLoader(points, labels, batch_size=32, seed=0)

    def test_fixed_point_training_smoke_step(self):
        policy = QuantizationPolicy.uniform_format(
            "fixed(16,13)", use_scaling=False, rounding="stochastic", seed=3)
        model = MLP(2, hidden=(16,), num_classes=3, rng=np.random.default_rng(1))
        trainer = PositTrainer(model, SGD(model.parameters(), lr=0.05, momentum=0.9),
                               CrossEntropyLoss(), policy=policy,
                               warmup=WarmupSchedule(0))
        loader = self._loaders()
        history = trainer.fit(loader, epochs=1)

        assert len(history) == 1
        assert np.isfinite(history.final_train_loss)
        assert history.records[-1].quantized
        # The quantizers actually ran and the weights landed on the grid.
        context = next(iter(trainer.contexts.values()))
        assert context.stats["weight"].calls > 0
        fmt = FixedPointFormat(2, 13)
        weight = next(iter(model.parameters())).data
        np.testing.assert_allclose(weight, np.asarray(fmt.quantize(weight)),
                                   rtol=0, atol=0)

    def test_fixed_point_context_formats_described(self):
        policy = QuantizationPolicy.uniform_format(FixedPointFormat(2, 13),
                                                   use_scaling=False)
        model = MLP(2, hidden=(8,), num_classes=3, rng=np.random.default_rng(0))
        contexts = policy.attach(model)
        described = next(iter(contexts.values())).describe()
        assert described["formats"]["weight"] == "fixed(16,13)"
