"""Tests for post-training quantization and low-bit posit inference."""

import numpy as np
import pytest

from repro.core import (
    QuantizationPolicy,
    evaluate_quantized,
    inference_sweep,
    quantize_model_weights,
)
from repro.data import ArrayDataLoader, make_blobs
from repro.models import MLP
from repro.nn import CrossEntropyLoss
from repro.optim import SGD
from repro.posit import PositConfig, quantize
from repro.tensor import Tensor


@pytest.fixture(scope="module")
def trained_model_and_loader():
    """A small MLP trained in FP32 on blobs, plus its validation loader."""
    points, labels = make_blobs(num_samples=320, num_classes=4, spread=0.4, seed=0)
    points = (points - points.mean(axis=0)) / points.std(axis=0)
    order = np.random.default_rng(0).permutation(len(points))
    points, labels = points[order], labels[order]
    model = MLP(2, hidden=(32, 16), num_classes=4, rng=np.random.default_rng(0))
    optimizer = SGD(model.parameters(), lr=0.1, momentum=0.9)
    criterion = CrossEntropyLoss()
    train = ArrayDataLoader(points[:256], labels[:256], batch_size=32, seed=0)
    for _ in range(15):
        for inputs, targets in train:
            loss = criterion(model(Tensor(inputs)), targets)
            model.zero_grad()
            loss.backward()
            optimizer.step()
    val = ArrayDataLoader(points[256:], labels[256:], batch_size=64, shuffle=False)
    return model, val


class TestQuantizeModelWeights:
    def test_weights_land_on_grid(self, trained_model_and_loader):
        model, _ = trained_model_and_loader
        state_backup = model.state_dict()
        config = PositConfig(8, 1)
        scales = quantize_model_weights(model, config, use_scaling=False)
        try:
            for param in model.parameters():
                np.testing.assert_array_equal(
                    param.data, np.asarray(quantize(param.data, config, rounding="nearest")))
            assert all(scale == 1.0 for scale in scales.values())
        finally:
            model.load_state_dict(state_backup)

    def test_scaled_quantization_returns_scales(self, trained_model_and_loader):
        model, _ = trained_model_and_loader
        state_backup = model.state_dict()
        try:
            scales = quantize_model_weights(model, PositConfig(8, 1), use_scaling=True)
            assert len(scales) == len(model.parameters())
            assert all(np.log2(s) == round(np.log2(s)) for s in scales.values())
        finally:
            model.load_state_dict(state_backup)

    def test_none_format_is_noop(self, trained_model_and_loader):
        model, _ = trained_model_and_loader
        before = model.state_dict()
        assert quantize_model_weights(model, None) == {}
        after = model.state_dict()
        for key in before:
            np.testing.assert_array_equal(before[key], after[key])


class TestEvaluateQuantized:
    def test_fp32_weights_untouched_after_evaluation(self, trained_model_and_loader):
        model, loader = trained_model_and_loader
        before = model.state_dict()
        evaluate_quantized(model, loader, PositConfig(8, 1))
        after = model.state_dict()
        for key in before:
            np.testing.assert_array_equal(before[key], after[key])
        assert all(m.quant is None for m in model.modules())

    def test_16bit_inference_matches_fp32(self, trained_model_and_loader):
        model, loader = trained_model_and_loader
        fp32 = inference_sweep(model, loader, formats=[None])[0]["accuracy"]
        posit16 = evaluate_quantized(model, loader, PositConfig(16, 1))
        assert posit16 >= fp32 - 0.05

    def test_aggressive_format_degrades(self, trained_model_and_loader):
        model, loader = trained_model_and_loader
        fp32 = inference_sweep(model, loader, formats=[None])[0]["accuracy"]
        posit4 = evaluate_quantized(model, loader, PositConfig(4, 0), use_scaling=False)
        assert posit4 <= fp32


class TestInferenceSweep:
    def test_sweep_rows_and_monotone_trend(self, trained_model_and_loader):
        model, loader = trained_model_and_loader
        rows = inference_sweep(model, loader)
        assert rows[0]["format"] == "fp32"
        assert len(rows) == 6
        accuracies = {row["format"]: row["accuracy"] for row in rows}
        # 16-bit posit inference should essentially match FP32.
        assert accuracies["posit(16,1)"] >= accuracies["fp32"] - 0.05
        # And nothing can beat perfect accuracy.
        assert all(0.0 <= row["accuracy"] <= 1.0 for row in rows)

    def test_custom_format_list(self, trained_model_and_loader):
        model, loader = trained_model_and_loader
        rows = inference_sweep(model, loader, formats=[PositConfig(8, 1)])
        assert len(rows) == 1 and rows[0]["format"] == "posit(8,1)"
