"""Tests for the distribution-based shifting of Eq. (2)/(3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ScaleEstimator, ScaleFactor, compute_scale_factor, log2_center


class TestLog2Center:
    def test_power_of_two_tensor(self):
        assert log2_center(np.full(100, 8.0)) == 3.0

    def test_mixed_signs_use_magnitude(self):
        assert log2_center(np.array([-4.0, 4.0, -4.0, 4.0])) == 2.0

    def test_zeros_ignored(self):
        assert log2_center(np.array([0.0, 0.0, 2.0])) == 1.0

    def test_all_zero_tensor(self):
        assert log2_center(np.zeros(10)) == 0.0

    def test_rounding_to_integer(self):
        # Geometric mean of 1 and 2 is 2**0.5 -> center rounds to 0 or 1; mean
        # of log2 values is 0.5 which rounds (banker's) to 0.
        assert log2_center(np.array([1.0, 2.0])) in (0.0, 1.0)

    def test_nonfinite_ignored(self):
        assert log2_center(np.array([np.nan, np.inf, 4.0])) == 2.0


class TestComputeScaleFactor:
    def test_equation_2_with_default_sigma(self):
        """Sf = 2**(center + sigma), sigma = 2 as in the paper."""
        values = np.full(50, 2.0**-6)
        assert compute_scale_factor(values) == 2.0 ** (-6 + 2)

    def test_sigma_zero(self):
        values = np.full(50, 0.25)
        assert compute_scale_factor(values, sigma=0) == 0.25

    def test_scale_is_power_of_two(self, rng):
        values = rng.standard_normal(1000) * 0.037
        scale = compute_scale_factor(values)
        assert 2.0 ** round(np.log2(scale)) == scale

    def test_shifting_moves_center_towards_sigma(self, rng):
        """After dividing by Sf the distribution center lands near -sigma."""
        sigma = 2
        values = rng.standard_normal(5000) * 1e-3
        scale = compute_scale_factor(values, sigma=sigma)
        shifted_center = np.mean(np.log2(np.abs(values[values != 0]) / scale))
        assert shifted_center == pytest.approx(-sigma, abs=1.0)

    def test_scale_factor_record(self):
        record = ScaleFactor.from_tensor(np.full(10, 0.5), sigma=2)
        assert record.center == -1.0
        assert record.value == 2.0

    @given(exponent=st.integers(-30, 30))
    @settings(max_examples=60, deadline=None)
    def test_scale_tracks_magnitude(self, exponent):
        """Tensors concentrated at 2**e get Sf = 2**(e + sigma)."""
        values = np.full(64, 2.0**exponent)
        assert compute_scale_factor(values, sigma=2) == 2.0 ** (exponent + 2)


class TestScaleEstimator:
    def test_dynamic_mode_recomputes(self, rng):
        estimator = ScaleEstimator(sigma=2, mode="dynamic")
        small = np.full(10, 2.0**-8)
        large = np.full(10, 2.0**4)
        assert estimator.scale_for(small) == 2.0**-6
        assert estimator.scale_for(large) == 2.0**6

    def test_calibrated_mode_freezes_center(self):
        estimator = ScaleEstimator(sigma=2, mode="calibrated")
        estimator.calibrate(np.full(10, 2.0**-8))
        # Later tensors with a different magnitude still use the frozen center.
        assert estimator.scale_for(np.full(10, 2.0**4)) == 2.0**-6

    def test_calibrated_mode_without_calibration_falls_back(self):
        estimator = ScaleEstimator(sigma=2, mode="calibrated")
        assert estimator.scale_for(np.full(10, 2.0**3)) == 2.0**5

    def test_observe_uses_moving_average(self):
        estimator = ScaleEstimator(sigma=0, mode="calibrated", ema_momentum=0.5)
        estimator.observe(np.full(10, 2.0**0))
        estimator.observe(np.full(10, 2.0**4))
        assert estimator.calibrated_center == pytest.approx(2.0)
        assert estimator.num_observations == 2

    def test_disabled_estimator_returns_unity(self):
        estimator = ScaleEstimator(enabled=False)
        assert estimator.scale_for(np.full(10, 2.0**-9)) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ScaleEstimator(mode="bogus")
        with pytest.raises(ValueError):
            ScaleEstimator(sigma=-1)
