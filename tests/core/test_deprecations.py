"""The PR-2 deprecation window has closed: the shims must be *gone*.

PR 2 deprecated the legacy ``Format`` union alias and the
``repro.baselines.fixedpoint`` module with a two-PR removal window; these
tests pin the other side of that promise — the names no longer resolve,
and the supported replacements import cleanly without warnings.
"""

import importlib
import warnings

import pytest

from repro.formats import NumberFormat


class TestFormatAliasRemoved:
    def test_core_format_is_gone(self):
        import repro.core

        with pytest.raises(AttributeError):
            repro.core.Format

    def test_policy_module_format_is_gone(self):
        from repro.core import policy

        with pytest.raises(AttributeError):
            policy.Format

    def test_format_not_reexported(self):
        import repro.core
        from repro.core import policy

        assert "Format" not in repro.core.__all__
        assert "Format" not in policy.__all__

    def test_tensor_format_replacement_is_silent(self):
        from typing import Optional

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            from repro.core import TensorFormat
            from repro.core.policy import TensorFormat as PolicyTensorFormat

        assert TensorFormat is PolicyTensorFormat
        assert TensorFormat == Optional[NumberFormat]


class TestFixedPointShimRemoved:
    def test_shim_module_is_gone(self):
        import sys

        sys.modules.pop("repro.baselines.fixedpoint", None)
        with pytest.raises(ModuleNotFoundError):
            importlib.import_module("repro.baselines.fixedpoint")

    def test_package_reexports_remain_and_are_silent(self):
        """``repro.baselines`` still re-exports the names, warning-free."""
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            baselines = importlib.import_module("repro.baselines")
        from repro.formats import FixedPointFormat

        assert baselines.FixedPointFormat is FixedPointFormat
