"""Tests for the PR-2 deprecation window (legacy Format alias, shims)."""

import importlib
import sys
import warnings

import pytest

from repro.formats import NumberFormat


class TestFormatAlias:
    def test_core_format_warns(self):
        import repro.core

        with pytest.warns(DeprecationWarning, match="repro.core.Format is deprecated"):
            alias = repro.core.Format
        # The alias is still usable: it is Optional[NumberFormat].
        from typing import Optional

        assert alias == Optional[NumberFormat]

    def test_policy_module_format_warns(self):
        from repro.core import policy

        with pytest.warns(DeprecationWarning, match="deprecated"):
            policy.Format

    def test_tensor_format_replacement_is_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            from repro.core import TensorFormat  # noqa: F401
            from repro.core.policy import TensorFormat as _  # noqa: F401

    def test_unknown_attribute_still_raises(self):
        import repro.core

        with pytest.raises(AttributeError):
            repro.core.no_such_attribute
        with pytest.raises(AttributeError):
            from repro.core import policy

            policy.no_such_attribute


class TestFixedPointShim:
    def test_importing_shim_warns(self):
        sys.modules.pop("repro.baselines.fixedpoint", None)
        with pytest.warns(DeprecationWarning, match="repro.baselines.fixedpoint"):
            importlib.import_module("repro.baselines.fixedpoint")

    def test_shim_still_exports_the_names(self):
        shim = importlib.import_module("repro.baselines.fixedpoint")
        from repro.formats import FixedPointFormat

        assert shim.FixedPointFormat is FixedPointFormat

    def test_package_import_is_silent(self):
        """`import repro.baselines` must not trip the shim's warning."""
        sys.modules.pop("repro.baselines.fixedpoint", None)
        sys.modules.pop("repro.baselines", None)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            baselines = importlib.import_module("repro.baselines")
            assert baselines.FixedPointFormat is not None
