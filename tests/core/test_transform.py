"""Tests for the Fig. 3 quantization transforms and the per-layer context."""

import numpy as np
import pytest

from repro.core import (
    LayerQuantContext,
    ScaleEstimator,
    apply_scaled_quantization,
    fake_quantize,
    grad_quantize,
)
from repro.posit import PositConfig, PositQuantizer, quantize
from repro.tensor import Tensor


CFG_FWD = PositConfig(8, 1)
CFG_BWD = PositConfig(8, 2)


class TestApplyScaledQuantization:
    def test_equation_3(self, rng):
        """px = P(x / Sf) * Sf."""
        values = rng.standard_normal(100) * 0.01
        quantizer = PositQuantizer(CFG_FWD)
        scale = 2.0**-5
        result = apply_scaled_quantization(values, quantizer, scale)
        np.testing.assert_array_equal(result, np.asarray(quantize(values / scale, CFG_FWD)) * scale)

    def test_unit_scale_shortcut(self, rng):
        values = rng.standard_normal(20)
        quantizer = PositQuantizer(CFG_FWD)
        np.testing.assert_array_equal(
            apply_scaled_quantization(values, quantizer, 1.0),
            np.asarray(quantize(values, CFG_FWD)),
        )

    def test_shifting_improves_small_magnitude_fidelity(self, rng):
        """The whole point of Eq. (3): small-magnitude tensors lose less."""
        values = rng.standard_normal(2000) * 1e-4
        quantizer = PositQuantizer(PositConfig(8, 0))
        direct = apply_scaled_quantization(values, quantizer, 1.0)
        from repro.core import compute_scale_factor

        scale = compute_scale_factor(values)
        shifted = apply_scaled_quantization(values, quantizer, scale)
        assert np.abs(shifted - values).mean() < np.abs(direct - values).mean()


class TestFakeQuantize:
    def test_forward_values_on_grid(self, rng):
        x = Tensor(rng.standard_normal(50), requires_grad=True)
        out = fake_quantize(x, PositQuantizer(CFG_FWD))
        np.testing.assert_array_equal(out.data, np.asarray(quantize(x.data, CFG_FWD)))

    def test_straight_through_gradient(self, rng):
        x = Tensor(rng.standard_normal(50), requires_grad=True)
        out = fake_quantize(x, PositQuantizer(CFG_FWD))
        upstream = rng.standard_normal(50)
        out.backward(upstream)
        np.testing.assert_array_equal(x.grad, upstream)

    def test_scaler_applied(self, rng):
        x = Tensor(rng.standard_normal(100) * 1e-4, requires_grad=True)
        scaler = ScaleEstimator(sigma=2)
        out = fake_quantize(x, PositQuantizer(CFG_FWD), scaler)
        scale = scaler.scale_for(x.data)
        np.testing.assert_array_equal(
            out.data, np.asarray(quantize(x.data / scale, CFG_FWD)) * scale
        )


class TestGradQuantize:
    def test_forward_is_identity(self, rng):
        x = Tensor(rng.standard_normal(30), requires_grad=True)
        out = grad_quantize(x, PositQuantizer(CFG_BWD))
        np.testing.assert_array_equal(out.data, x.data)

    def test_backward_gradient_on_grid(self, rng):
        x = Tensor(rng.standard_normal(30), requires_grad=True)
        out = grad_quantize(x, PositQuantizer(CFG_BWD))
        upstream = rng.standard_normal(30)
        out.backward(upstream)
        np.testing.assert_array_equal(x.grad, np.asarray(quantize(upstream, CFG_BWD)))

    def test_stats_recorded_on_backward(self, rng):
        from repro.core import RoleStats

        stats = RoleStats()
        x = Tensor(rng.standard_normal(30), requires_grad=True)
        out = grad_quantize(x, PositQuantizer(CFG_BWD), stats=stats)
        out.backward(rng.standard_normal(30))
        assert stats.calls == 1
        assert stats.elements == 30


class TestLayerQuantContext:
    def make_context(self, **kwargs):
        return LayerQuantContext(
            "layer0",
            weight_quantizer=PositQuantizer(CFG_FWD),
            activation_quantizer=PositQuantizer(CFG_FWD),
            error_quantizer=PositQuantizer(CFG_BWD),
            weight_grad_quantizer=PositQuantizer(CFG_BWD),
            **kwargs,
        )

    def test_weight_and_activation_quantized(self, rng):
        context = self.make_context()
        w = Tensor(rng.standard_normal(40), requires_grad=True)
        assert np.array_equal(context.weight(w).data, np.asarray(quantize(w.data, CFG_FWD)))
        a = Tensor(rng.standard_normal(40))
        assert np.array_equal(context.activation(a).data, np.asarray(quantize(a.data, CFG_FWD)))

    def test_weight_grad_hook_uses_backward_format(self, rng):
        context = self.make_context()
        grad = rng.standard_normal(25)
        np.testing.assert_array_equal(context.weight_grad(grad),
                                      np.asarray(quantize(grad, CFG_BWD)))

    def test_param_hook_uses_forward_format(self, rng):
        context = self.make_context()
        data = rng.standard_normal(25)
        np.testing.assert_array_equal(context.param(data),
                                      np.asarray(quantize(data, CFG_FWD)))

    def test_disabled_context_passthrough(self, rng):
        context = self.make_context()
        context.enabled = False
        values = rng.standard_normal(10)
        tensor = Tensor(values)
        assert context.weight(tensor) is tensor
        np.testing.assert_array_equal(context.weight_grad(values), values)

    def test_none_quantizer_means_full_precision(self, rng):
        context = LayerQuantContext("fp_layer")
        values = rng.standard_normal(10)
        tensor = Tensor(values)
        assert context.weight(tensor) is tensor
        assert context.error(tensor) is tensor
        np.testing.assert_array_equal(context.param(values), values)

    def test_stats_accumulate(self, rng):
        context = self.make_context()
        context.weight(Tensor(rng.standard_normal(16)))
        context.weight(Tensor(rng.standard_normal(16)))
        assert context.stats["weight"].calls == 2
        assert context.stats["weight"].elements == 32
        assert context.stats["weight"].log2_range >= 0

    def test_describe_reports_formats(self):
        description = self.make_context().describe()
        assert description["formats"]["weight"] == "posit(8,1)"
        assert description["formats"]["error"] == "posit(8,2)"
        # A context without quantizers reports fp32.
        assert LayerQuantContext("x").describe()["formats"]["weight"] == "fp32"

    def test_scalers_per_role(self, rng):
        context = LayerQuantContext(
            "scaled",
            weight_quantizer=PositQuantizer(CFG_FWD),
            weight_scaler=ScaleEstimator(sigma=2),
        )
        weights = Tensor(rng.standard_normal(200) * 1e-3, requires_grad=True)
        quantized = context.weight(weights)
        # With shifting, small weights survive the 8-bit format much better.
        direct = np.asarray(quantize(weights.data, CFG_FWD))
        assert np.abs(quantized.data - weights.data).mean() <= np.abs(direct - weights.data).mean()
