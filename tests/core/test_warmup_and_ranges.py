"""Tests for the warm-up schedule, range analysis, and training metrics."""

import numpy as np
import pytest

from repro.core import (
    AverageMeter,
    EpochRecord,
    RangeTracker,
    TrainingHistory,
    WarmupSchedule,
    covered_log2_range,
    log2_range,
    recommend_es,
)
from repro.posit import PositConfig


class TestWarmupSchedule:
    def test_paper_cifar_schedule(self):
        """Cifar-10 uses 1 warm-up epoch (§III-C)."""
        schedule = WarmupSchedule(1)
        assert schedule.in_warmup(0)
        assert not schedule.in_warmup(1)
        assert not schedule.quantization_enabled(0)
        assert schedule.quantization_enabled(1)
        assert schedule.is_transition(1)
        assert not schedule.is_transition(0)

    def test_paper_imagenet_schedule(self):
        """ImageNet uses 5 warm-up epochs (§III-C)."""
        schedule = WarmupSchedule(5)
        assert all(schedule.in_warmup(e) for e in range(5))
        assert schedule.quantization_enabled(5)
        assert schedule.is_transition(5)

    def test_zero_warmup_disables_phase(self):
        schedule = WarmupSchedule(0)
        assert schedule.quantization_enabled(0)
        assert schedule.is_transition(0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            WarmupSchedule(-1)

    def test_describe(self):
        assert WarmupSchedule(3).describe() == {"warmup_epochs": 3}


class TestRangeAnalysis:
    def test_log2_range_of_uniform_tensor_is_zero(self):
        assert log2_range(np.full(10, 0.5)) == 0.0

    def test_log2_range_measures_spread(self):
        values = np.array([2.0**-10, 2.0**6])
        assert log2_range(values) == pytest.approx(16.0)

    def test_percentile_robust_to_outliers(self, rng):
        values = np.concatenate([rng.uniform(0.5, 2.0, 1000), [1e-30]])
        assert log2_range(values, percentile=1.0) < 10
        assert log2_range(values) > 90

    def test_covered_range(self):
        assert covered_log2_range(PositConfig(8, 0)) == 12
        assert covered_log2_range(PositConfig(8, 2)) == 48

    def test_recommend_es_grows_with_range(self):
        assert recommend_es(5.0, n=8) <= recommend_es(40.0, n=8)

    def test_recommend_es_paper_rule(self):
        """Weight-like ranges fit es=1 while gradient-like ranges need es=2 at 8 bits."""
        weight_like_range = 12.0    # a few orders of magnitude
        gradient_like_range = 30.0  # much wider spread
        assert recommend_es(weight_like_range, n=8) <= 1
        assert recommend_es(gradient_like_range, n=8) >= 2

    def test_recommend_es_caps_at_max(self):
        assert recommend_es(10000.0, n=8, max_es=3) == 3

    def test_recommend_es_validation(self):
        with pytest.raises(ValueError):
            recommend_es(-1.0, n=8)

    def test_tracker_collects_and_reports(self, rng):
        tracker = RangeTracker(n_bits=8)
        tracker.record("conv1", "weight", rng.standard_normal(100) * 0.1)
        tracker.record("conv1", "error", rng.standard_normal(100) * 1e-5)
        tracker.record("conv1", "error", rng.standard_normal(100) * 1e2)
        report = tracker.report()
        assert len(report) == 2
        error_row = next(r for r in report if r["role"] == "error")
        weight_row = next(r for r in report if r["role"] == "weight")
        assert error_row["overall_log2_range"] > weight_row["overall_log2_range"]

    def test_tracker_recommends_larger_es_for_errors(self, rng):
        """The §III-B conclusion: backward tensors need a bigger es."""
        tracker = RangeTracker(n_bits=8)
        for _ in range(5):
            tracker.record("layer", "weight", rng.standard_normal(200) * 0.05)
            scale = 10.0 ** rng.uniform(-6, 2)
            tracker.record("layer", "error", rng.standard_normal(200) * scale)
        recommendation = tracker.recommended_es_by_role()
        assert recommendation["error"] >= recommendation["weight"]

    def test_record_model_weights(self, rng):
        from repro.models import tiny_resnet

        tracker = RangeTracker()
        tracker.record_model_weights(tiny_resnet(rng=rng))
        assert any(row["role"] == "weight" for row in tracker.report())

    def test_empty_tensor_ignored(self):
        tracker = RangeTracker()
        tracker.record("layer", "weight", np.zeros(10))
        assert tracker.report()[0]["overall_log2_range"] == 0.0


class TestMetrics:
    def test_average_meter(self):
        meter = AverageMeter("loss")
        meter.update(2.0, count=10)
        meter.update(4.0, count=10)
        assert meter.average == pytest.approx(3.0)
        meter.reset()
        assert meter.average == 0.0

    def test_epoch_record_as_dict(self):
        record = EpochRecord(epoch=3, train_loss=0.5, train_accuracy=0.8,
                             val_accuracy=0.7, quantized=True, extras={"scale": 4.0})
        as_dict = record.as_dict()
        assert as_dict["epoch"] == 3 and as_dict["scale"] == 4.0

    def test_history_accessors(self):
        history = TrainingHistory()
        history.append(EpochRecord(0, 1.0, 0.3, val_accuracy=0.4))
        history.append(EpochRecord(1, 0.5, 0.6, val_accuracy=0.55))
        history.append(EpochRecord(2, 0.4, 0.7, val_accuracy=0.52))
        assert len(history) == 3
        assert history.final_val_accuracy == 0.52
        assert history.best_val_accuracy == 0.55
        assert history.final_train_loss == 0.4
        assert history.summary()["epochs"] == 3
        np.testing.assert_array_equal(history.train_loss_curve(), [1.0, 0.5, 0.4])

    def test_history_handles_missing_validation(self):
        history = TrainingHistory()
        history.append(EpochRecord(0, 1.0, 0.3))
        assert history.final_val_accuracy is None
        assert np.isnan(history.val_accuracy_curve()).all()
