"""Tests for the quantization policies (Table III format assignments)."""

import numpy as np
import pytest

from repro.baselines import FixedPointFormat
from repro.core import QuantizationPolicy, RoleFormats
from repro.models import tiny_resnet
from repro.nn import BatchNorm2d, Conv2d, Linear
from repro.posit import FP16, PositConfig


class TestRoleFormats:
    def test_posit_helper_assigns_forward_and_backward(self):
        formats = RoleFormats.posit(PositConfig(8, 1), PositConfig(8, 2))
        assert formats.weight == PositConfig(8, 1)
        assert formats.activation == PositConfig(8, 1)
        assert formats.error == PositConfig(8, 2)
        assert formats.weight_grad == PositConfig(8, 2)

    def test_full_precision_all_none(self):
        formats = RoleFormats.full_precision()
        assert formats.weight is None and formats.error is None

    def test_as_dict_names(self):
        formats = RoleFormats.posit(PositConfig(16, 1), PositConfig(16, 2))
        assert formats.as_dict() == {
            "weight": "posit(16,1)",
            "activation": "posit(16,1)",
            "error": "posit(16,2)",
            "weight_grad": "posit(16,2)",
        }


class TestPaperPolicies:
    def test_cifar_policy_matches_table3_footnote1(self):
        """(8,1)/(8,2) for CONV, (16,1)/(16,2) for BN."""
        policy = QuantizationPolicy.cifar_paper()
        assert policy.conv_formats.weight == PositConfig(8, 1)
        assert policy.conv_formats.error == PositConfig(8, 2)
        assert policy.bn_formats.weight == PositConfig(16, 1)
        assert policy.bn_formats.error == PositConfig(16, 2)

    def test_imagenet_policy_matches_table3_footnote2(self):
        """(16,1) forward/update and (16,2) backward for every layer type."""
        policy = QuantizationPolicy.imagenet_paper()
        for formats in (policy.conv_formats, policy.bn_formats, policy.linear_formats):
            assert formats.weight == PositConfig(16, 1)
            assert formats.weight_grad == PositConfig(16, 2)

    def test_default_rounding_is_round_to_zero(self):
        """Algorithm 1 uses the hardware-friendly round-to-zero."""
        assert QuantizationPolicy.cifar_paper().rounding == "zero"

    def test_default_es_criterion(self):
        """Forward es=1, backward es=2 — the §III-B dynamic-range rule."""
        policy = QuantizationPolicy.uniform(16)
        assert policy.conv_formats.weight.es == 1
        assert policy.conv_formats.error.es == 2

    def test_uniform_policy(self):
        policy = QuantizationPolicy.uniform(8, es_forward=0, es_backward=1)
        assert policy.conv_formats.weight == PositConfig(8, 0)
        assert policy.bn_formats.error == PositConfig(8, 1)

    def test_float_baseline_policy(self):
        policy = QuantizationPolicy.float_baseline(FP16, FP16)
        assert policy.conv_formats.weight == FP16

    def test_full_precision_policy(self):
        policy = QuantizationPolicy.full_precision()
        assert policy.conv_formats.weight is None

    def test_with_overrides_copies(self):
        base = QuantizationPolicy.cifar_paper()
        changed = base.with_overrides(use_scaling=False, sigma=3)
        assert changed.use_scaling is False and changed.sigma == 3
        assert base.use_scaling is True and base.sigma == 2
        assert changed.conv_formats == base.conv_formats


class TestFormatsFor:
    def test_dispatch_by_layer_type(self, rng):
        policy = QuantizationPolicy.cifar_paper()
        assert policy.formats_for(Conv2d(3, 4, 3, rng=rng)).weight == PositConfig(8, 1)
        assert policy.formats_for(BatchNorm2d(4)).weight == PositConfig(16, 1)
        assert policy.formats_for(Linear(4, 4, rng=rng)).weight == PositConfig(8, 1)

    def test_unhandled_module_returns_none(self):
        from repro.nn import ReLU

        assert QuantizationPolicy.cifar_paper().formats_for(ReLU()) is None


class TestAttach:
    def test_attaches_context_to_every_quantizable_layer(self, rng):
        model = tiny_resnet(rng=rng)
        contexts = QuantizationPolicy.cifar_paper().attach(model)
        quantizable = [m for m in model.modules()
                       if isinstance(m, (Conv2d, BatchNorm2d, Linear))]
        assert len(contexts) == len(quantizable)
        assert all(m.quant is not None for m in quantizable)

    def test_bn_and_conv_get_different_formats(self, rng):
        model = tiny_resnet(rng=rng)
        QuantizationPolicy.cifar_paper().attach(model)
        conv = next(m for m in model.modules() if isinstance(m, Conv2d))
        bn = next(m for m in model.modules() if isinstance(m, BatchNorm2d))
        assert conv.quant.quantizers["weight"].config == PositConfig(8, 1)
        assert bn.quant.quantizers["weight"].config == PositConfig(16, 1)

    def test_first_and_last_layer_exemptions(self, rng):
        model = tiny_resnet(rng=rng)
        policy = QuantizationPolicy.uniform(8, first_layer_full_precision=True,
                                            last_layer_full_precision=True)
        contexts = policy.attach(model)
        ordered = list(contexts.values())
        assert ordered[0].quantizers["weight"] is None
        assert ordered[-1].quantizers["weight"] is None
        assert ordered[1].quantizers["weight"] is not None

    def test_detach_restores_full_precision(self, rng):
        model = tiny_resnet(rng=rng)
        QuantizationPolicy.cifar_paper().attach(model)
        QuantizationPolicy.detach(model)
        assert all(m.quant is None for m in model.modules())

    def test_set_enabled_toggles_all_contexts(self, rng):
        model = tiny_resnet(rng=rng)
        contexts = QuantizationPolicy.cifar_paper().attach(model)
        QuantizationPolicy.set_enabled(model, False)
        assert all(not c.enabled for c in contexts.values())
        QuantizationPolicy.set_enabled(model, True)
        assert all(c.enabled for c in contexts.values())

    def test_no_scaling_option_skips_scalers(self, rng):
        model = tiny_resnet(rng=rng)
        contexts = QuantizationPolicy.uniform(8, use_scaling=False).attach(model)
        assert all(c.scalers["weight"] is None for c in contexts.values())

    def test_fixed_point_format_supported_via_hook(self, rng):
        formats = RoleFormats(weight=FixedPointFormat(2, 5), activation=FixedPointFormat(2, 5),
                              error=FixedPointFormat(2, 5), weight_grad=FixedPointFormat(2, 5))
        policy = QuantizationPolicy(conv_formats=formats, use_scaling=False)
        model = tiny_resnet(rng=rng)
        contexts = policy.attach(model)
        conv_context = next(iter(contexts.values()))
        values = np.array([0.37, -1.22])
        quantized = conv_context.weight_grad(values)
        np.testing.assert_allclose(quantized, np.round(values * 32) / 32)

    def test_describe_round_trips_key_options(self):
        description = QuantizationPolicy.cifar_paper(use_scaling=False).describe()
        assert description["conv"]["weight"] == "posit(8,1)"
        assert description["use_scaling"] is False


class TestExportFormats:
    """Policy -> per-parameter storage-format mapping (artifact v2 export)."""

    def test_mixed_policy_assigns_weight_role_per_layer(self, rng):
        model = tiny_resnet(rng=rng)
        formats = QuantizationPolicy.cifar_paper().export_formats(model)
        by_module = {name: module for name, module in model.named_modules()}
        assert formats  # every quantizable layer contributes
        for qualified, fmt in formats.items():
            module_name = qualified.rsplit(".", 1)[0]
            module = by_module[module_name]
            if isinstance(module, (Conv2d, Linear)):
                assert fmt == PositConfig(8, 1), qualified
            elif isinstance(module, BatchNorm2d):
                assert fmt == PositConfig(16, 1), qualified
        assert len({fmt for fmt in formats.values()}) == 2

    def test_covers_every_parameter_of_quantizable_layers(self, rng):
        model = tiny_resnet(rng=rng)
        formats = QuantizationPolicy.cifar_paper().export_formats(model)
        quantizable_params = {
            f"{name}.{pname}" if name else pname
            for name, module in model.named_modules()
            if isinstance(module, (Conv2d, BatchNorm2d, Linear))
            for pname, _ in module.named_parameters()
        }
        assert set(formats) == quantizable_params

    def test_full_precision_roles_map_to_none(self, rng):
        model = tiny_resnet(rng=rng)
        formats = QuantizationPolicy.full_precision().export_formats(model)
        assert formats and all(fmt is None for fmt in formats.values())

    def test_first_and_last_layer_exemptions_apply(self, rng):
        model = tiny_resnet(rng=rng)
        policy = QuantizationPolicy.uniform(8, first_layer_full_precision=True,
                                            last_layer_full_precision=True)
        attach_order = [
            name for name, module in model.named_modules()
            if isinstance(module, (Conv2d, BatchNorm2d, Linear))
        ]
        formats = policy.export_formats(model)
        first, last = attach_order[0], attach_order[-1]
        assert formats[f"{first}.weight"] is None
        assert formats[f"{last}.weight"] is None
        middle = attach_order[1]
        assert formats[f"{middle}.weight"] == PositConfig(8, 1)
