"""End-to-end integration tests: the full paper pipeline at reduced scale.

These tests tie every subsystem together — synthetic data, ResNet models,
the posit training methodology, the baselines, and the analysis tooling —
and assert the paper's *qualitative* claims at a scale small enough for CI:

* posit training with warm-up + shifting + the paper's es policy reaches the
  FP32 baseline (Table III's headline result),
* removing the stabilizing techniques or using an over-aggressive format
  hurts (the §III-B motivation),
* the Fig. 2 distribution phenomenon (BN weights shift early) is observable.
"""

import numpy as np
import pytest

from repro.analysis import DistributionRecorder, bn_shift_magnitude
from repro.core import PositTrainer, QuantizationPolicy, WarmupSchedule
from repro.data import SyntheticImageDataset, train_loader
from repro.data.loaders import test_loader as make_test_loader
from repro.models import tiny_resnet
from repro.nn import CrossEntropyLoss
from repro.optim import SGD


def small_dataset(seed=0):
    return SyntheticImageDataset(num_classes=4, num_train=192, num_test=96,
                                 image_size=16, noise_std=0.4,
                                 prototype_smoothness=4, max_shift=1, seed=seed)


def run_training(policy, warmup_epochs, epochs=4, seed=0, lr=0.05,
                 callbacks=None, dataset_seed=1):
    dataset = small_dataset(seed=dataset_seed)
    train = train_loader(dataset, batch_size=32, seed=seed)
    val = make_test_loader(dataset, batch_size=96)
    model = tiny_resnet(num_classes=4, base_width=8, rng=np.random.default_rng(seed))
    optimizer = SGD(model.parameters(), lr=lr, momentum=0.9)
    trainer = PositTrainer(model, optimizer, CrossEntropyLoss(), policy=policy,
                           warmup=WarmupSchedule(warmup_epochs),
                           epoch_callbacks=callbacks or [])
    history = trainer.fit(train, val, epochs=epochs)
    return trainer, history


@pytest.mark.slow
class TestPaperPipeline:
    def test_fp32_baseline_learns(self):
        _, history = run_training(policy=None, warmup_epochs=0)
        assert history.final_val_accuracy > 0.5
        assert history.train_loss_curve()[-1] < history.train_loss_curve()[0]

    def test_posit_paper_recipe_matches_fp32(self):
        """Table III at reduced scale: Cifar policy + warm-up ~= FP32 baseline."""
        _, fp32_history = run_training(policy=None, warmup_epochs=0)
        _, posit_history = run_training(policy=QuantizationPolicy.cifar_paper(),
                                        warmup_epochs=1)
        assert posit_history.final_val_accuracy >= fp32_history.final_val_accuracy - 0.12

    def test_aggressive_format_without_tricks_degrades(self):
        """posit(6,0) with no warm-up and no shifting falls well behind."""
        _, good_history = run_training(policy=QuantizationPolicy.cifar_paper(),
                                       warmup_epochs=1)
        bad_policy = QuantizationPolicy.uniform(6, es_forward=0, es_backward=0,
                                                use_scaling=False)
        _, bad_history = run_training(policy=bad_policy, warmup_epochs=0)
        assert bad_history.final_val_accuracy < good_history.final_val_accuracy

    def test_warmup_epochs_stay_in_fp32(self):
        trainer, history = run_training(policy=QuantizationPolicy.cifar_paper(),
                                        warmup_epochs=2, epochs=3)
        assert [record.quantized for record in history] == [False, False, True]

    def test_fig2_bn_weights_shift_more_than_conv_weights(self):
        """The Fig. 2 observation that motivates warm-up training."""
        recorder = DistributionRecorder(keep_histograms=False)
        run_training(policy=None, warmup_epochs=0, epochs=4, callbacks=[recorder])
        shifts = bn_shift_magnitude(recorder)
        conv_shift = next(v for k, v in shifts.items() if "conv1" in k)
        bn_shift = next(v for k, v in shifts.items() if "bn1" in k)
        assert bn_shift > conv_shift

    def test_training_is_reproducible_given_seeds(self):
        _, history_a = run_training(policy=QuantizationPolicy.uniform(16),
                                    warmup_epochs=1, epochs=2)
        _, history_b = run_training(policy=QuantizationPolicy.uniform(16),
                                    warmup_epochs=1, epochs=2)
        np.testing.assert_allclose(history_a.train_loss_curve(),
                                   history_b.train_loss_curve())

    def test_state_dict_roundtrip_preserves_validation_accuracy(self):
        trainer, history = run_training(policy=QuantizationPolicy.uniform(16),
                                        warmup_epochs=1, epochs=3)
        dataset = small_dataset(seed=1)
        val = make_test_loader(dataset, batch_size=96)
        _, accuracy_before = trainer.evaluate(val)

        fresh_model = tiny_resnet(num_classes=4, base_width=8,
                                  rng=np.random.default_rng(99))
        fresh_model.load_state_dict(trainer.model.state_dict())
        fresh_trainer = PositTrainer(fresh_model, SGD(fresh_model.parameters(), lr=0.05),
                                     CrossEntropyLoss())
        _, accuracy_after = fresh_trainer.evaluate(val)
        assert accuracy_after == pytest.approx(accuracy_before, abs=1e-9)
