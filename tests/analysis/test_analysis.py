"""Tests for the analysis tooling: distributions (Fig. 2), errors, and coverage."""

import numpy as np
import pytest

from repro.analysis import (
    DistributionRecorder,
    bn_shift_magnitude,
    code_usage,
    compare_formats,
    coverage_report,
    default_tracked_parameters,
    histogram_summary,
    max_relative_error,
    mean_absolute_error,
    quantization_report,
    shifting_benefit,
    shifting_coverage_gain,
    sqnr_db,
)
from repro.models import tiny_resnet
from repro.posit import PositConfig, PositQuantizer, quantize


class TestHistogramSummary:
    def test_summary_fields(self, rng):
        summary = histogram_summary(rng.standard_normal(1000))
        assert summary["counts"].sum() == 1000
        assert len(summary["edges"]) == 51
        assert -0.2 < summary["mean"] < 0.2
        assert 0.8 < summary["std"] < 1.2

    def test_log2_center_of_scaled_tensor(self):
        summary = histogram_summary(np.full(100, 0.25))
        assert summary["log2_center"] == pytest.approx(-2.0)

    def test_empty_and_zero_tensors(self):
        assert histogram_summary(np.zeros(10))["log2_center"] == 0.0


class TestDistributionRecorder:
    def test_default_tracks_first_conv_and_bn(self, rng):
        model = tiny_resnet(rng=rng)
        names = default_tracked_parameters(model)
        assert len(names) == 2
        assert any("conv1" in name for name in names)
        assert any("bn1" in name for name in names)

    def test_records_per_epoch(self, rng):
        model = tiny_resnet(rng=rng)
        recorder = DistributionRecorder()
        for epoch in range(3):
            recorder.record_model(model, epoch)
        for snapshot in recorder.snapshots.values():
            assert snapshot.epochs == [0, 1, 2]
            assert len(snapshot.means) == 3

    def test_detects_distribution_shift(self, rng):
        """A parameter whose values change a lot shows a large total_shift (Fig. 2)."""
        model = tiny_resnet(rng=rng)
        bn_name = [n for n in default_tracked_parameters(model) if "bn" in n][0]
        recorder = DistributionRecorder(parameter_names=[bn_name])
        recorder.record_model(model, 0)
        # Simulate the early-training BN shift the paper observes.
        params = dict(model.named_parameters())
        params[bn_name].data *= 0.3
        params[bn_name].data += 0.5
        recorder.record_model(model, 1)
        shifts = bn_shift_magnitude(recorder)
        assert shifts[bn_name] > 1.0

    def test_stable_parameter_has_small_shift(self, rng):
        model = tiny_resnet(rng=rng)
        conv_name = default_tracked_parameters(model)[0]
        recorder = DistributionRecorder(parameter_names=[conv_name])
        recorder.record_model(model, 0)
        recorder.record_model(model, 1)
        assert bn_shift_magnitude(recorder)[conv_name] == pytest.approx(0.0, abs=1e-12)

    def test_unknown_parameter_rejected(self, rng):
        recorder = DistributionRecorder(parameter_names=["nope.weight"])
        with pytest.raises(KeyError):
            recorder.record_model(tiny_resnet(rng=rng), 0)

    def test_report_rows(self, rng):
        model = tiny_resnet(rng=rng)
        recorder = DistributionRecorder(keep_histograms=False)
        recorder.record_model(model, 0)
        report = recorder.report()
        assert len(report) == 2
        assert all("total_shift" in row for row in report)


class TestQuantErrorMetrics:
    def test_sqnr_infinite_for_exact(self, rng):
        values = rng.standard_normal(100)
        assert sqnr_db(values, values) == float("inf")

    def test_sqnr_decreases_with_noise(self, rng):
        values = rng.standard_normal(1000)
        low_noise = values + rng.standard_normal(1000) * 1e-4
        high_noise = values + rng.standard_normal(1000) * 1e-1
        assert sqnr_db(values, low_noise) > sqnr_db(values, high_noise)

    def test_relative_and_absolute_errors(self):
        original = np.array([1.0, 2.0, 0.0])
        quantized = np.array([1.1, 1.8, 0.0])
        assert max_relative_error(original, quantized) == pytest.approx(0.1)
        assert mean_absolute_error(original, quantized) == pytest.approx(0.1)

    def test_quantization_report(self, rng):
        values = rng.standard_normal(500)
        report = quantization_report(values, PositQuantizer(PositConfig(8, 1)), label="p8")
        assert report["label"] == "p8"
        assert report["sqnr_db"] > 10

    def test_more_bits_give_higher_sqnr(self, rng):
        values = rng.standard_normal(2000)
        reports = compare_formats(values, {
            "posit8": PositQuantizer(PositConfig(8, 1)),
            "posit16": PositQuantizer(PositConfig(16, 1)),
        })
        by_label = {r["label"]: r for r in reports}
        assert by_label["posit16"]["sqnr_db"] > by_label["posit8"]["sqnr_db"] + 20

    def test_shifting_benefit_positive_for_small_magnitudes(self, rng):
        """Eq. (2)/(3) shifting recovers SQNR on badly-centred tensors."""
        values = rng.standard_normal(3000) * 1e-4
        result = shifting_benefit(values, PositConfig(8, 0))
        assert result["sqnr_gain_db"] > 3.0

    def test_shifting_benefit_scale_sweep(self, rng):
        values = rng.standard_normal(500) * 1e-3
        result = shifting_benefit(values, PositConfig(8, 1),
                                  scales=[2.0**-12, 2.0**-8, 1.0])
        assert len(result["scale_sweep"]) == 3


class TestCoverage:
    def test_code_usage_fields(self, rng):
        usage = code_usage(rng.standard_normal(5000), PositConfig(8, 1))
        assert 0 < usage["distinct_codes"] <= 256
        assert 0 < usage["code_space_fraction"] <= 1
        assert usage["normalized_entropy"] <= 1.0

    def test_badly_centred_tensor_uses_few_codes(self, rng):
        values = rng.standard_normal(5000) * 1e-6
        centred = rng.standard_normal(5000)
        off = code_usage(values, PositConfig(8, 1))
        on = code_usage(centred, PositConfig(8, 1))
        assert off["distinct_codes"] < on["distinct_codes"]

    def test_shifting_improves_coverage(self, rng):
        """The motivation for Eq. (2)/(3): shifting exercises more of the code space."""
        values = rng.standard_normal(5000) * 1e-5
        gain = shifting_coverage_gain(values, PositConfig(8, 1))
        assert gain["distinct_code_gain"] > 0
        assert gain["entropy_gain_bits"] > 0

    def test_coverage_report_multiple_formats(self, rng):
        values = rng.standard_normal(1000)
        rows = coverage_report(values, [PositConfig(8, 0), PositConfig(8, 2)])
        assert len(rows) == 2
