"""Algebraic properties of the kernel codec path + oracle-preservation pins.

Complements the differential harness (``test_kernel_differential.py``): that
file proves kernel == oracle; this one proves the invariants *both* paths
must satisfy, that array metadata survives the kernel's ravel/reshape round
trip, that dispatch honours the ``REPRO_CODEC_KERNELS`` switch, and — the
"fix en route" from the issue — that the scalar entry points stay alive and
callable, because they *are* the oracle.  The audit of
``repro.posit.quantize`` / ``repro.posit.scalar`` found no dead helpers to
delete: every bit-assembly loop still serves the ``posit(32,x)`` formats,
which sit above ``KERNEL_MAX_BITS`` and always take the scalar path (pinned
below).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.formats import (
    KERNEL_MAX_BITS,
    FixedPointFormat,
    KernelQuantizer,
    available_formats,
    clear_quantizer_cache,
    get_kernel,
    get_quantizer,
    kernel_info,
    kernels_enabled,
    set_kernels_enabled,
)
from repro.posit import POSIT_8_1, POSIT_16_1, POSIT_32_3
from repro.posit import scalar as posit_scalar
from repro.posit.quantize import (
    bits_to_float,
    positive_value_grid,
    quantize as posit_quantize,
    quantize_to_bits,
)
from repro.posit.floatformats import BFLOAT16, FP16, float_from_bits, float_quantize, float_to_bits
from repro.formats.fixedpoint import (
    fixed_point_from_bits,
    fixed_point_quantize,
    fixed_point_to_bits,
)


def _narrow_formats():
    seen, out = set(), []
    for fmt in available_formats().values():
        if fmt.bits <= KERNEL_MAX_BITS and fmt not in seen:
            seen.add(fmt)
            out.append(fmt)
    return sorted(out, key=lambda f: f.spec())


NARROW_FORMATS = _narrow_formats()
FORMAT_IDS = [fmt.spec() for fmt in NARROW_FORMATS]


@pytest.fixture(autouse=True)
def _force_kernels_on():
    previous = set_kernels_enabled(True)
    clear_quantizer_cache()
    yield
    set_kernels_enabled(previous)
    clear_quantizer_cache()


def _sample(fmt, size=2048, seed=42):
    rng = np.random.default_rng(seed)
    mag = np.exp(rng.uniform(np.log(float(fmt.minpos) / 4.0),
                             np.log(float(fmt.maxpos) * 4.0), size=size))
    sign = rng.choice([-1.0, 1.0], size=size)
    x = mag * sign
    x[:8] = [0.0, -0.0, np.inf, -np.inf, np.nan, fmt.minpos, -fmt.minpos, fmt.maxpos]
    return x


# --------------------------------------------------------------------------
# Algebraic invariants
# --------------------------------------------------------------------------

@pytest.mark.parametrize("mode", ["zero", "nearest"])
@pytest.mark.parametrize("fmt", NARROW_FORMATS, ids=FORMAT_IDS)
def test_round_trip_from_bits_of_to_bits_is_quantize(fmt, mode):
    x = _sample(fmt)
    if isinstance(fmt, FixedPointFormat):
        # Fixed point has no NaN code: quantize(NaN) stays NaN but to_bits
        # must produce *some* int, so the round trip only applies to inputs
        # the code space can express (oracle semantics, kernels included).
        x = x[~np.isnan(x)]
    via_bits = fmt.from_bits(fmt.to_bits(x, mode=mode))
    direct = fmt.quantize(x, mode=mode)
    assert np.array_equal(via_bits, direct, equal_nan=True)
    # Signed zeros are excluded on purpose: the storage code for zero is
    # canonical (always +0), while float ``quantize`` keeps -0.0 for
    # underflowed negatives — oracle behaviour the kernels reproduce.
    nonzero = np.isfinite(direct) & (direct != 0.0)
    assert np.array_equal(np.signbit(via_bits[nonzero]), np.signbit(direct[nonzero]))


@pytest.mark.parametrize("mode", ["zero", "nearest"])
@pytest.mark.parametrize("fmt", NARROW_FORMATS, ids=FORMAT_IDS)
def test_quantize_is_idempotent(fmt, mode):
    once = fmt.quantize(_sample(fmt), mode=mode)
    twice = fmt.quantize(once, mode=mode)
    assert np.array_equal(once, twice, equal_nan=True)
    # float quantize(-0.0) is +0.0 while quantize(-tiny) is -0.0, so the
    # zero *sign* is only stable from the second application on (oracle
    # semantics).  Nonzero signs must be exactly stable.
    nonzero = np.isfinite(once) & (once != 0.0)
    assert np.array_equal(np.signbit(once[nonzero]), np.signbit(twice[nonzero]))
    thrice = fmt.quantize(twice, mode=mode)
    assert np.array_equal(np.signbit(twice), np.signbit(thrice))


@pytest.mark.parametrize("fmt", NARROW_FORMATS, ids=FORMAT_IDS)
def test_zero_encodes_canonically(fmt):
    """+0.0 and -0.0 map to the *same* storage code in every family."""
    bits = fmt.to_bits(np.array([0.0, -0.0]), mode="nearest")
    assert bits[0] == bits[1]
    decoded = fmt.from_bits(bits)
    assert decoded[0] == 0.0 and decoded[1] == 0.0


# --------------------------------------------------------------------------
# Array-metadata preservation through the ravel/gather/reshape round trip
# --------------------------------------------------------------------------

@pytest.mark.parametrize("fmt", [POSIT_8_1, POSIT_16_1, FP16, BFLOAT16,
                                 FixedPointFormat(2, 13)],
                         ids=lambda f: f.spec())
def test_shapes_dtypes_and_layouts_are_preserved(fmt):
    base = np.linspace(-2.0, 2.0, 24, dtype=np.float64)

    # 0-d input -> 0-d/scalar output, same as the oracle contract.
    scalar_q = fmt.quantize(np.float64(0.75), mode="nearest")
    assert np.ndim(scalar_q) == 0
    scalar_b = fmt.to_bits(np.float64(0.75), mode="nearest")
    assert np.ndim(scalar_b) == 0
    assert np.ndim(fmt.from_bits(scalar_b)) == 0

    # Empty input -> empty output of the right dtype.
    empty = fmt.quantize(np.empty((0, 3)), mode="nearest")
    assert empty.shape == (0, 3) and empty.dtype == np.float64
    empty_bits = fmt.to_bits(np.empty((0, 3)), mode="nearest")
    assert empty_bits.shape == (0, 3) and empty_bits.dtype == np.int64

    # Fortran-ordered 2-d input: element order must follow values, not memory.
    f_ordered = np.asfortranarray(base.reshape(4, 6))
    assert not f_ordered.flags["C_CONTIGUOUS"]
    q = fmt.quantize(f_ordered, mode="nearest")
    assert q.shape == (4, 6)
    assert np.array_equal(q, fmt.quantize(np.ascontiguousarray(f_ordered),
                                          mode="nearest"))

    # Non-contiguous strided view.
    strided = base.reshape(4, 6)[::2, ::3]
    assert not strided.flags["C_CONTIGUOUS"]
    qs = fmt.quantize(strided, mode="nearest")
    assert qs.shape == strided.shape
    assert np.array_equal(qs, fmt.quantize(strided.copy(), mode="nearest"))

    # Plain lists coerce like the oracle does.
    assert np.array_equal(fmt.to_bits([0.5, -0.5], mode="nearest"),
                          fmt.to_bits(np.array([0.5, -0.5]), mode="nearest"))


# --------------------------------------------------------------------------
# Dispatch switch
# --------------------------------------------------------------------------

def _unwrap(quantizer):
    """See through the profiler proxy the factory always applies."""
    return getattr(quantizer, "_inner", quantizer)


def test_factory_serves_kernel_quantizers_when_enabled():
    q = get_quantizer(POSIT_8_1, "zero")
    assert isinstance(_unwrap(q), KernelQuantizer)
    # Equality, not identity: the kernel cache is keyed by format equality,
    # so the kernel (and hence q.format) may hold an equal registry instance
    # built by whichever suite touched posit(8,1) first.
    assert q.format == POSIT_8_1
    assert q.format.spec() == "posit(8,1)"
    assert q.rounding == "zero"


def test_factory_falls_back_when_disabled():
    set_kernels_enabled(False)
    q = get_quantizer(POSIT_8_1, "zero")
    assert not isinstance(_unwrap(q), KernelQuantizer)
    x = np.linspace(-3, 3, 64)
    off = q(x)
    set_kernels_enabled(True)
    on = get_quantizer(POSIT_8_1, "zero")(x)
    assert np.array_equal(on, off)


def test_environment_variable_controls_default(monkeypatch):
    set_kernels_enabled(None)  # defer to the environment
    monkeypatch.setenv("REPRO_CODEC_KERNELS", "0")
    assert not kernels_enabled()
    monkeypatch.setenv("REPRO_CODEC_KERNELS", "off")
    assert not kernels_enabled()
    monkeypatch.setenv("REPRO_CODEC_KERNELS", "1")
    assert kernels_enabled()
    monkeypatch.delenv("REPRO_CODEC_KERNELS")
    assert kernels_enabled()  # on by default


def test_wide_formats_never_get_kernels():
    assert POSIT_32_3.bits > KERNEL_MAX_BITS
    assert get_kernel(POSIT_32_3) is None
    # Dispatch must leave wide formats on the scalar path untouched.
    x = np.linspace(-10, 10, 128)
    expected = posit_quantize(x, POSIT_32_3, rounding="zero")
    assert np.array_equal(POSIT_32_3.quantize(x, mode="zero"), expected)


def test_kernel_info_reports_every_narrow_format():
    rows = {row["spec"]: row for row in kernel_info()}
    for fmt in NARROW_FORMATS:
        row = rows[fmt.spec()]
        assert row["kind"] in ("line", "fixed")
        assert row["decode_entries"] == 1 << fmt.bits
        assert row["table_bytes"] > 0
    # Wide formats are present but explicitly unsupported.
    assert rows["posit(32,3)"]["kind"] == "none"
    assert rows["posit(32,3)"]["table_bytes"] == 0


# --------------------------------------------------------------------------
# Oracle preservation: the scalar entry points must stay alive (they are the
# ground truth the kernels are built from and verified against).
# --------------------------------------------------------------------------

def test_posit_scalar_entry_points_still_work():
    set_kernels_enabled(False)
    fmt = POSIT_8_1
    # Scalar single-value codec (the LUT build source).
    for code in (0, 1, fmt.nar_pattern - 1, fmt.nar_pattern, 200, 255):
        value = posit_scalar.decode(code, fmt)
        if not np.isnan(value):
            assert posit_scalar.encode(value, fmt) == code
    fields = posit_scalar.decode_fields(0b01000000, fmt)
    assert fields.sign == 0
    # Vectorized oracle module functions.
    x = np.linspace(-4, 4, 33)
    bits = quantize_to_bits(x, fmt, rounding="nearest")
    values = bits_to_float(bits, fmt)
    assert np.array_equal(values, posit_quantize(x, fmt, rounding="nearest"))
    grid = positive_value_grid(fmt)
    assert grid.size == fmt.positive_code_count


def test_float_and_fixed_module_oracles_still_work():
    set_kernels_enabled(False)
    x = np.linspace(-3, 3, 65)
    for fmt in (FP16, BFLOAT16):
        bits = float_to_bits(x, fmt, rounding="nearest")
        assert np.array_equal(float_from_bits(bits, fmt),
                              float_quantize(x, fmt, rounding="nearest"))
    fx = FixedPointFormat(2, 13)
    bits = fixed_point_to_bits(x, fx, rounding="nearest")
    assert np.array_equal(fixed_point_from_bits(bits, fx),
                          fixed_point_quantize(x, fx, rounding="nearest"))
