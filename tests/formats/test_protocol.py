"""The NumberFormat protocol: one surface across posit, float, and fixed point."""

import numpy as np
import pytest

from repro.formats import FixedPointFormat, NumberFormat
from repro.posit import (
    FP8_E4M3,
    FP16,
    FP32,
    FloatFormat,
    PositConfig,
    float_from_bits,
    float_to_bits,
)

ALL_FAMILIES = [
    PositConfig(8, 1),
    PositConfig(16, 2),
    FP16,
    FP8_E4M3,
    FixedPointFormat(2, 5),
    FixedPointFormat(2, 13),
]


@pytest.fixture(params=ALL_FAMILIES, ids=lambda fmt: fmt.spec())
def fmt(request) -> NumberFormat:
    return request.param


class TestProtocolSurface:
    def test_isinstance_number_format(self, fmt):
        assert isinstance(fmt, NumberFormat)

    def test_bits_positive(self, fmt):
        assert isinstance(fmt.bits, int) and fmt.bits > 0

    def test_minpos_maxpos_ordering(self, fmt):
        assert 0 < fmt.minpos <= fmt.maxpos

    def test_name_is_string(self, fmt):
        assert isinstance(fmt.name, str)

    def test_spec_is_string(self, fmt):
        assert isinstance(fmt.spec(), str) and fmt.spec()

    def test_quantize_idempotent(self, fmt, rng):
        values = rng.standard_normal(500)
        once = np.asarray(fmt.quantize(values, mode="nearest"))
        twice = np.asarray(fmt.quantize(once, mode="nearest"))
        np.testing.assert_array_equal(once, twice)

    def test_quantize_preserves_zero(self, fmt):
        assert fmt.quantize(0.0) == 0.0

    def test_make_quantizer_matches_quantize(self, fmt, rng):
        values = rng.standard_normal(200)
        quantizer = fmt.make_quantizer(rounding="nearest")
        np.testing.assert_array_equal(
            np.asarray(quantizer(values)),
            np.asarray(fmt.quantize(values, mode="nearest")),
        )

    def test_quantizer_exposes_format(self, fmt):
        assert fmt.make_quantizer().format == fmt


class TestBitCodecs:
    def test_round_trip_matches_quantize(self, fmt, rng):
        values = np.concatenate([
            rng.standard_normal(300) * 0.02,
            rng.standard_normal(300) * 30.0,
            np.array([0.0, 1.0, -1.0, 1e12, -1e12]),
        ])
        expected = np.asarray(fmt.quantize(values))
        decoded = np.asarray(fmt.from_bits(fmt.to_bits(values)))
        np.testing.assert_allclose(decoded, expected, rtol=0, atol=0)

    def test_bits_fit_in_word(self, fmt, rng):
        bits = np.atleast_1d(fmt.to_bits(rng.standard_normal(200)))
        assert bits.dtype == np.int64
        assert bits.min() >= 0
        assert bits.max() < (1 << fmt.bits)

    def test_scalar_in_scalar_out(self, fmt):
        assert np.ndim(fmt.to_bits(1.25)) == 0
        assert np.ndim(fmt.from_bits(fmt.to_bits(1.25))) == 0


class TestFloatBitPatterns:
    """The float codec against well-known IEEE half-precision patterns."""

    @pytest.mark.parametrize("value,pattern", [
        (1.0, 0x3C00),
        (-2.0, 0xC000),
        (65504.0, 0x7BFF),     # FP16 max finite
        (2.0 ** -24, 0x0001),  # smallest subnormal
        (0.0, 0x0000),
    ])
    def test_known_fp16_patterns(self, value, pattern):
        assert int(float_to_bits(value, FP16)) == pattern
        assert float_from_bits(pattern, FP16) == value

    def test_nan_round_trips(self):
        assert np.isnan(float_from_bits(float_to_bits(np.nan, FP16), FP16))

    def test_saturation_encodes_max(self):
        assert float_from_bits(float_to_bits(1e30, FP16), FP16) == FP16.max_value

    def test_fp32_grid_is_float32(self, rng):
        values = rng.standard_normal(100).astype(np.float32).astype(np.float64)
        np.testing.assert_array_equal(float_from_bits(float_to_bits(values, FP32), FP32),
                                      values)


class TestFixedPointBitPatterns:
    def test_twos_complement_extremes(self):
        fmt = FixedPointFormat(2, 5)  # 8-bit word
        assert int(fmt.to_bits(fmt.max_value)) == 0x7F
        assert int(fmt.to_bits(fmt.min_value)) == 0x80
        assert int(fmt.to_bits(-fmt.step)) == 0xFF

    def test_protocol_aliases(self):
        fmt = FixedPointFormat(2, 13)
        assert fmt.maxpos == fmt.max_value
        assert fmt.minpos == fmt.step
        assert fmt.bits == 16


class TestPositProtocolAliases:
    def test_bits_is_word_size(self):
        assert PositConfig(16, 1).bits == 16

    def test_name_matches_spec(self):
        cfg = PositConfig(8, 2)
        assert cfg.name == cfg.spec() == "posit(8,2)"

    def test_quantize_method_matches_function(self, rng):
        from repro.posit import quantize

        cfg = PositConfig(8, 1)
        values = rng.standard_normal(300)
        np.testing.assert_array_equal(np.asarray(cfg.quantize(values)),
                                      np.asarray(quantize(values, cfg)))


class TestFloatFormatSpec:
    def test_named_constants_use_short_specs(self):
        assert FP32.spec() == "fp32"
        assert FP16.spec() == "fp16"
        assert FP8_E4M3.spec() == "fp8_e4m3"

    def test_parametric_formats_use_structural_spec(self):
        assert FloatFormat(5, 7).spec() == "float(5,7)"

    def test_code_count_excludes_reserved_exponent(self):
        # fp8_e4m3: 256 patterns minus 2 * 2**3 reserved (all-ones exponent).
        assert FP8_E4M3.code_count == 240
        assert FP16.code_count == (1 << 16) - 2 * (1 << 10)

    def test_coverage_uses_finite_code_count(self, rng):
        from repro.analysis import code_usage

        # Exercise essentially the whole finite fp8 grid; the fraction must
        # be able to approach 1.0, which it cannot if the reserved NaN/inf
        # patterns are counted as available code space.
        values = np.concatenate([rng.uniform(-FP8_E4M3.max_value, FP8_E4M3.max_value, 200000),
                                 rng.standard_normal(200000) * FP8_E4M3.min_normal])
        usage = code_usage(values, FP8_E4M3, rounding="nearest")
        assert usage["code_space_fraction"] > 0.95
