"""Codec conformance across every registry format.

The serving stack's bit-identity guarantees (packed artifacts, the startup
guardrail, cross-worker identity) all reduce to three per-format codec
invariants, pinned here for *every* format the registry knows:

* **encode/decode is quantization**: ``from_bits(to_bits(x)) ==
  quantize(x)`` for arbitrary finite ``x`` — storing a tensor and reading
  it back is exactly fake quantization, nothing more;
* **grid points are fixed points**: every decodable value survives a
  quantize and an encode/decode round trip unchanged (exhaustive over all
  ``2**bits`` codes for widths <= 12, seeded random codes above);
* **zero is canonical**: ``0.0`` and ``-0.0`` both encode to the single
  canonical zero code and decode to exactly ``0.0`` (a second zero code
  would break byte-identical re-export and the guardrail's bit-identity).
"""

import numpy as np
import pytest

from repro.formats import available_formats

#: Exhaustive sweeps cost 2**bits decodes; 4096 codes is still instant.
EXHAUSTIVE_MAX_BITS = 12
SAMPLED_CODES = 4096
RANDOM_VALUES = 2048


def registry_formats() -> list:
    """Every distinct registered format, one instance per canonical spec."""
    by_spec = {}
    for fmt in available_formats().values():
        by_spec.setdefault(fmt.spec(), fmt)
    return [by_spec[spec] for spec in sorted(by_spec)]


FORMATS = registry_formats()
FORMAT_IDS = [fmt.spec() for fmt in FORMATS]


def all_codes(fmt) -> np.ndarray:
    """Every bit pattern (exhaustive) or a seeded sample of them (wide)."""
    if fmt.bits <= EXHAUSTIVE_MAX_BITS:
        return np.arange(2 ** fmt.bits, dtype=np.int64)
    rng = np.random.default_rng(0xC0DEC ^ fmt.bits)
    sampled = rng.integers(0, 2 ** fmt.bits, size=SAMPLED_CODES, dtype=np.int64)
    # Always include the boundary patterns the random draw can miss.
    edges = np.array([0, 1, 2 ** (fmt.bits - 1) - 1, 2 ** (fmt.bits - 1),
                      2 ** fmt.bits - 1], dtype=np.int64)
    return np.unique(np.concatenate([sampled, edges]))


def random_values(fmt) -> np.ndarray:
    """Finite values spanning well past the format's dynamic range."""
    rng = np.random.default_rng(0xF0012 ^ fmt.bits)
    span = np.log2(fmt.maxpos) - np.log2(fmt.minpos)
    exponents = rng.uniform(np.log2(fmt.minpos) - 0.1 * span - 2,
                            np.log2(fmt.maxpos) + 0.1 * span + 2,
                            size=RANDOM_VALUES)
    values = np.ldexp(rng.uniform(1.0, 2.0, size=RANDOM_VALUES), 0) * 2.0 ** exponents
    signs = rng.choice([-1.0, 1.0], size=RANDOM_VALUES)
    extremes = np.array([0.0, -0.0, fmt.minpos, -fmt.minpos, fmt.maxpos,
                         -fmt.maxpos, fmt.maxpos * 4, fmt.minpos / 4])
    return np.concatenate([values * signs, extremes])


@pytest.mark.parametrize("fmt", FORMATS, ids=FORMAT_IDS)
class TestCodecConformance:
    def test_encode_decode_equals_quantize(self, fmt):
        values = random_values(fmt)
        decoded = np.asarray(fmt.from_bits(fmt.to_bits(values, mode="nearest")))
        quantized = np.asarray(fmt.quantize(values, mode="nearest"))
        assert np.array_equal(decoded, quantized), fmt.spec()

    def test_grid_points_are_fixed_points(self, fmt):
        codes = all_codes(fmt)
        decoded = np.asarray(fmt.from_bits(codes), dtype=np.float64)
        finite = decoded[np.isfinite(decoded)]
        # Every representable value quantizes to itself ...
        assert np.array_equal(np.asarray(fmt.quantize(finite, mode="nearest")),
                              finite), fmt.spec()
        # ... and survives an encode/decode round trip bit for bit.
        recoded = np.asarray(fmt.from_bits(fmt.to_bits(finite, mode="nearest")))
        assert np.array_equal(recoded, finite), fmt.spec()

    def test_round_trip_is_idempotent(self, fmt):
        """Second encode/decode pass changes nothing (codec is a projection)."""
        values = random_values(fmt)
        once = np.asarray(fmt.from_bits(fmt.to_bits(values, mode="nearest")))
        twice = np.asarray(fmt.from_bits(fmt.to_bits(once, mode="nearest")))
        assert np.array_equal(once, twice), fmt.spec()

    def test_zero_is_canonical(self, fmt):
        zeros = np.array([0.0, -0.0])
        codes = np.asarray(fmt.to_bits(zeros, mode="nearest"))
        # One canonical zero code, shared by both signed zeros ...
        assert codes[0] == codes[1], fmt.spec()
        decoded = np.asarray(fmt.from_bits(codes))
        # ... decoding to exactly +0.0 (no negative-zero bit pattern leaks).
        assert np.array_equal(decoded, np.zeros(2)), fmt.spec()
        assert not np.signbit(decoded).any(), fmt.spec()

    def test_decoded_codes_stay_in_range(self, fmt):
        """No decodable value escapes the format's dynamic range.

        Positive values are bounded by ``maxpos`` exactly; the negative
        bound allows one extra step below ``-maxpos`` for two's-complement
        formats (fixed point's most-negative code has no positive twin).
        """
        decoded = np.asarray(fmt.from_bits(all_codes(fmt)), dtype=np.float64)
        finite_nonzero = decoded[np.isfinite(decoded) & (decoded != 0.0)]
        assert np.abs(finite_nonzero).min() >= fmt.minpos, fmt.spec()
        assert finite_nonzero.max() <= fmt.maxpos, fmt.spec()
        assert finite_nonzero.min() >= -(fmt.maxpos + fmt.minpos), fmt.spec()
