"""Differential conformance harness: LUT kernels vs the scalar oracle.

Every registry format with ``bits <= 16`` must behave **bit-for-bit**
identically whether the codec kernels (:mod:`repro.formats.kernels`) or the
historical scalar/vectorized module functions serve the call:

* ``from_bits`` — exhaustive over all ``2**bits`` codes, including NaR/NaN
  patterns and signed zeros (compared with ``signbit``, not just value).
* ``to_bits`` / ``quantize`` — exhaustive over the representable grid, every
  midpoint between adjacent representable values, the one-ulp neighbours of
  every midpoint (the tie-to-even boundary), seeded log-uniform and normal
  random draws, and the special values named in the issue: ``±0``, ``±inf``,
  ``NaN``, the subnormal range, and magnitudes beyond ``maxpos``.
* ``stochastic`` rounding — deterministic on exactly representable inputs,
  and compared distribution-wise (up-rounding frequency per probe point)
  under fixed seeds otherwise, since kernel and oracle consume their
  generators over different index sets.

The oracle side always goes through :func:`repro.formats.reference_ops`,
which binds the module-level functions directly — those never dispatch back
into the kernels, so the comparison stays meaningful even with kernels
forced on.  The kernel side goes through the *format methods*, so the
dispatch layer is exercised end-to-end, not just the kernel object.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.formats import (
    KERNEL_MAX_BITS,
    available_formats,
    get_kernel,
    reference_ops,
    set_kernels_enabled,
)


def _narrow_formats():
    """Distinct registry formats with ``bits <= KERNEL_MAX_BITS``."""
    seen, out = set(), []
    for fmt in available_formats().values():
        if fmt.bits <= KERNEL_MAX_BITS and fmt not in seen:
            seen.add(fmt)
            out.append(fmt)
    return sorted(out, key=lambda f: f.spec())


NARROW_FORMATS = _narrow_formats()
FORMAT_IDS = [fmt.spec() for fmt in NARROW_FORMATS]

#: Deterministic rounding modes.  Posit distinguishes ``zero`` (Algorithm 1
#: truncation) from ``nearest``; float/fixed map ``zero`` onto ``nearest``,
#: and the harness runs both spellings so that mapping is pinned too.
DETERMINISTIC_MODES = ("zero", "nearest")


@pytest.fixture(autouse=True)
def _force_kernels_on():
    previous = set_kernels_enabled(True)
    yield
    set_kernels_enabled(previous)


def _assert_same_values(kernel_vals, oracle_vals, context: str) -> None:
    kernel_vals = np.asarray(kernel_vals, dtype=np.float64)
    oracle_vals = np.asarray(oracle_vals, dtype=np.float64)
    assert np.array_equal(kernel_vals, oracle_vals, equal_nan=True), context
    # Value equality treats -0.0 == +0.0; the bit pattern must match too.
    assert np.array_equal(np.signbit(kernel_vals), np.signbit(oracle_vals)), (
        f"{context}: signed-zero mismatch"
    )


def _grid_values(fmt) -> np.ndarray:
    """Sorted unique finite representable values, via the oracle decoder."""
    ref = reference_ops(fmt)
    codes = np.arange(1 << fmt.bits, dtype=np.int64)
    values = np.asarray(ref.from_bits(codes), dtype=np.float64)
    return np.unique(values[np.isfinite(values)])


def _encode_sweep(fmt) -> np.ndarray:
    """Adversarial encode inputs: grid, midpoints, tie neighbours, randoms,
    specials (±0, ±inf, NaN, subnormal range, beyond-maxpos magnitudes)."""
    grid = _grid_values(fmt)
    mids = 0.5 * (grid[:-1] + grid[1:])
    neighbours = np.concatenate(
        [np.nextafter(mids, -np.inf), np.nextafter(mids, np.inf)]
    )
    rng = np.random.default_rng(0x5EED + fmt.bits)
    minpos, maxpos = float(fmt.minpos), float(fmt.maxpos)
    log_mag = np.exp(
        rng.uniform(np.log(minpos / 8.0), np.log(maxpos * 8.0), size=4096)
    )
    randoms = np.concatenate(
        [log_mag, -log_mag, rng.normal(scale=max(1.0, maxpos / 16.0), size=1024)]
    )
    specials = np.array(
        [
            0.0, -0.0, np.inf, -np.inf, np.nan,
            1e308, -1e308, 5e-324, -5e-324,
            minpos, -minpos, minpos / 2.0, -minpos / 2.0,
            minpos / 4.0, -minpos / 4.0,
            np.nextafter(minpos / 2.0, 0.0), np.nextafter(minpos / 2.0, 1.0),
            maxpos, -maxpos, maxpos * 2.0, -maxpos * 2.0,
            np.nextafter(maxpos, np.inf), -np.nextafter(maxpos, np.inf),
        ]
    )
    return np.concatenate([grid, mids, neighbours, randoms, specials])


def test_every_narrow_registry_format_has_a_kernel():
    """The issue requires kernels for *every* bits<=16 registry format."""
    missing = [fmt.spec() for fmt in NARROW_FORMATS if get_kernel(fmt) is None]
    assert not missing, f"no kernel built for: {missing}"


@pytest.mark.parametrize("fmt", NARROW_FORMATS, ids=FORMAT_IDS)
def test_from_bits_exhaustive(fmt):
    """All 2**bits codes decode identically through kernel and oracle."""
    ref = reference_ops(fmt)
    codes = np.arange(1 << fmt.bits, dtype=np.int64)
    _assert_same_values(
        fmt.from_bits(codes), ref.from_bits(codes), f"{fmt.spec()} from_bits"
    )


@pytest.mark.parametrize("mode", DETERMINISTIC_MODES)
@pytest.mark.parametrize("fmt", NARROW_FORMATS, ids=FORMAT_IDS)
def test_to_bits_bit_identity(fmt, mode):
    ref = reference_ops(fmt)
    x = _encode_sweep(fmt)
    kernel_bits = fmt.to_bits(x, mode=mode)
    oracle_bits = ref.to_bits(x, mode=mode)
    np.testing.assert_array_equal(
        kernel_bits, oracle_bits, err_msg=f"{fmt.spec()} to_bits[{mode}]"
    )


@pytest.mark.parametrize("mode", DETERMINISTIC_MODES)
@pytest.mark.parametrize("fmt", NARROW_FORMATS, ids=FORMAT_IDS)
def test_quantize_bit_identity(fmt, mode):
    ref = reference_ops(fmt)
    x = _encode_sweep(fmt)
    _assert_same_values(
        fmt.quantize(x, mode=mode),
        ref.quantize(x, mode=mode),
        f"{fmt.spec()} quantize[{mode}]",
    )


# The fixed-point *oracle* warns on inf - inf under stochastic rounding
# (pre-existing behaviour both paths share; the kernel delegates to it).
@pytest.mark.filterwarnings("ignore:invalid value encountered:RuntimeWarning")
@pytest.mark.parametrize("fmt", NARROW_FORMATS, ids=FORMAT_IDS)
def test_stochastic_is_deterministic_on_grid(fmt):
    """Exactly representable inputs round to themselves with probability 1,
    so stochastic mode must agree bit-for-bit on the grid (and on the
    specials the oracle handles deterministically)."""
    ref = reference_ops(fmt)
    grid = _grid_values(fmt)
    x = np.concatenate([grid, [0.0, -0.0, np.inf, -np.inf, np.nan]])
    kernel_bits = fmt.to_bits(x, mode="stochastic", rng=np.random.default_rng(1))
    oracle_bits = ref.to_bits(x, mode="stochastic", rng=np.random.default_rng(2))
    np.testing.assert_array_equal(
        kernel_bits, oracle_bits, err_msg=f"{fmt.spec()} stochastic grid"
    )
    _assert_same_values(
        fmt.quantize(x, mode="stochastic", rng=np.random.default_rng(3)),
        ref.quantize(x, mode="stochastic", rng=np.random.default_rng(4)),
        f"{fmt.spec()} stochastic grid quantize",
    )


@pytest.mark.parametrize("fmt", NARROW_FORMATS, ids=FORMAT_IDS)
def test_stochastic_distribution_matches(fmt):
    """Between grid points the two paths draw from their generators over
    different index sets, so seeds don't align call-for-call; compare the
    up-rounding frequency per probe point instead (law, not stream)."""
    ref = reference_ops(fmt)
    grid = _grid_values(fmt)
    positive = grid[grid > 0]
    rng = np.random.default_rng(99)
    idx = rng.choice(positive.size - 1, size=min(16, positive.size - 1),
                     replace=False)
    lo, hi = positive[idx], positive[idx + 1]
    fractions = np.array([0.25, 0.5, 0.75])[:, None]
    points = (lo + fractions * (hi - lo)).ravel()

    draws = 3000
    tiled = np.tile(points, draws)
    kernel_bits = fmt.to_bits(
        tiled, mode="stochastic", rng=np.random.default_rng(7)
    ).reshape(draws, points.size)
    oracle_bits = np.asarray(ref.to_bits(
        tiled, mode="stochastic", rng=np.random.default_rng(11)
    )).reshape(draws, points.size)

    # Each point has exactly two admissible codes; compare P(higher code).
    kernel_lo = kernel_bits.min(axis=0)
    oracle_lo = oracle_bits.min(axis=0)
    np.testing.assert_array_equal(kernel_lo, oracle_lo)
    np.testing.assert_array_equal(kernel_bits.max(axis=0),
                                  oracle_bits.max(axis=0))
    kernel_up = (kernel_bits != kernel_lo).mean(axis=0)
    oracle_up = (oracle_bits != oracle_lo).mean(axis=0)
    np.testing.assert_allclose(
        kernel_up, oracle_up, atol=0.04,
        err_msg=f"{fmt.spec()} stochastic up-probability",
    )


@pytest.mark.parametrize("fmt", NARROW_FORMATS, ids=FORMAT_IDS)
def test_kernel_disabled_matches_kernel_enabled(fmt):
    """The switch changes the engine, never the answer."""
    x = _encode_sweep(fmt)
    on_bits = fmt.to_bits(x, mode="nearest")
    on_vals = fmt.quantize(x, mode="nearest")
    set_kernels_enabled(False)
    try:
        off_bits = fmt.to_bits(x, mode="nearest")
        off_vals = fmt.quantize(x, mode="nearest")
    finally:
        set_kernels_enabled(True)
    np.testing.assert_array_equal(on_bits, off_bits)
    _assert_same_values(on_vals, off_vals, f"{fmt.spec()} switch")
