"""Spec-string parsing and round-tripping through the format registry."""

import pytest

from repro.formats import (
    FixedPointFormat,
    FormatSpecError,
    as_format,
    available_formats,
    parse_format,
)
from repro.posit import BFLOAT16, FP8_E4M3, FP16, FP32, FloatFormat, PositConfig


class TestRoundTrip:
    def test_every_registered_format_round_trips(self):
        registry = available_formats()
        assert registry, "registry must not be empty"
        for spec, fmt in registry.items():
            assert parse_format(spec) == fmt
            assert parse_format(fmt.spec()) == fmt

    def test_parametric_posit_round_trips(self):
        for cfg in (PositConfig(6, 0), PositConfig(10, 1), PositConfig(24, 2)):
            assert parse_format(cfg.spec()) == cfg

    def test_parametric_float_round_trips(self):
        fmt = FloatFormat(5, 7)
        assert parse_format(fmt.spec()) == fmt

    def test_parametric_fixed_round_trips(self):
        fmt = FixedPointFormat(3, 4)
        assert parse_format(fmt.spec()) == fmt
        assert fmt.spec() == "fixed(8,4)"


class TestRegisteredContents:
    def test_all_posit_module_constants_are_registered(self):
        # Including posit(32,2), which PAPER_FORMATS deliberately omits.
        registry = available_formats()
        for spec in ("posit(5,1)", "posit(8,0)", "posit(8,1)", "posit(8,2)",
                     "posit(16,1)", "posit(16,2)", "posit(32,2)", "posit(32,3)"):
            assert spec in registry, f"{spec} missing from registry"

    def test_named_float_formats(self):
        assert parse_format("fp32") == FP32
        assert parse_format("fp16") == FP16
        assert parse_format("bfloat16") == BFLOAT16
        assert parse_format("fp8_e4m3") == FP8_E4M3

    def test_fixed_point_baselines_registered(self):
        assert parse_format("fixed(16,13)") == FixedPointFormat(2, 13)
        assert parse_format("fixed(8,5)") == FixedPointFormat(2, 5)


class TestNormalization:
    def test_case_and_whitespace_insensitive(self):
        assert parse_format("Posit(8, 1)") == PositConfig(8, 1)
        assert parse_format("  FP16 ") == FP16

    def test_dash_alias(self):
        assert parse_format("FP8-E4M3") == FP8_E4M3

    def test_cached_posit_instances(self):
        assert parse_format("posit(8,1)") is parse_format("posit(8,1)")


class TestErrors:
    def test_posit_missing_argument(self):
        with pytest.raises(FormatSpecError, match=r"posit spec takes 2 integer"):
            parse_format("posit(8)")

    def test_fixed_fraction_wider_than_word(self):
        with pytest.raises(FormatSpecError, match=r"4-bit word cannot hold 8"):
            parse_format("fixed(4,8)")

    def test_posit_invalid_word_size(self):
        with pytest.raises(FormatSpecError, match=r"word size"):
            parse_format("posit(1,0)")

    def test_non_integer_argument(self):
        with pytest.raises(FormatSpecError, match=r"non-integer"):
            parse_format("posit(8,x)")

    def test_negative_arguments_report_the_real_constraint(self):
        with pytest.raises(FormatSpecError, match=r"word size must be >= 2"):
            parse_format("posit(-3,1)")

    def test_doubled_commas_rejected(self):
        # "posit(8,,1)" must not silently collapse to posit(8,1).
        with pytest.raises(FormatSpecError, match=r"takes 2 integer"):
            parse_format("posit(8,,1)")
        with pytest.raises(FormatSpecError, match=r"takes 2 integer"):
            parse_format("fixed(16,,13)")
        with pytest.raises(FormatSpecError, match=r"takes 2 integer"):
            parse_format("posit(8,1,)")

    def test_unknown_family(self):
        with pytest.raises(FormatSpecError, match=r"unknown format family"):
            parse_format("bogus(1,2)")

    def test_unknown_name_lists_candidates(self):
        with pytest.raises(FormatSpecError, match=r"fp16"):
            parse_format("totally_unknown")

    def test_non_string_raises_type_error(self):
        with pytest.raises(TypeError):
            parse_format(42)


class TestAsFormat:
    def test_passes_format_through(self):
        cfg = PositConfig(8, 1)
        assert as_format(cfg) is cfg

    def test_parses_strings(self):
        assert as_format("fp16") == FP16

    def test_none_requires_opt_in(self):
        assert as_format(None, allow_none=True) is None
        with pytest.raises(TypeError):
            as_format(None)

    def test_rejects_junk(self):
        with pytest.raises(TypeError):
            as_format(3.14)
