"""The cached quantizer factory: one instance per (format, rounding) key."""

import numpy as np
import pytest

from repro.formats import (
    FixedPointFormat,
    clear_quantizer_cache,
    get_quantizer,
    quantizer_cache_info,
)
from repro.posit import FP16, PositConfig


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_quantizer_cache()
    yield
    clear_quantizer_cache()


class TestCaching:
    def test_same_key_returns_same_instance(self):
        a = get_quantizer(PositConfig(8, 1), "zero")
        b = get_quantizer(PositConfig(8, 1), "zero")
        assert a is b

    def test_equal_but_distinct_format_objects_share(self):
        # Frozen dataclasses hash by value, so freshly built configs hit
        # the same cache slot.
        assert get_quantizer(PositConfig(16, 2), "nearest") is \
            get_quantizer(PositConfig(16, 2), "nearest")

    def test_spec_string_and_object_share(self):
        assert get_quantizer("posit(8,1)", "zero") is \
            get_quantizer(PositConfig(8, 1), "zero")

    def test_different_rounding_distinct(self):
        assert get_quantizer(PositConfig(8, 1), "zero") is not \
            get_quantizer(PositConfig(8, 1), "nearest")

    def test_different_formats_distinct(self):
        assert get_quantizer(PositConfig(8, 1), "zero") is not \
            get_quantizer(PositConfig(8, 2), "zero")

    def test_all_families_cacheable(self):
        for fmt in (PositConfig(8, 1), FP16, FixedPointFormat(2, 13)):
            assert get_quantizer(fmt, "nearest") is get_quantizer(fmt, "nearest")

    def test_none_returns_none_and_is_not_cached(self):
        assert get_quantizer(None) is None
        assert quantizer_cache_info()["size"] == 0

    def test_explicit_rng_bypasses_cache(self):
        rng = np.random.default_rng(0)
        seeded = get_quantizer(PositConfig(8, 1), "stochastic", rng=rng)
        again = get_quantizer(PositConfig(8, 1), "stochastic", rng=rng)
        assert seeded is not again
        # The seeded instances never enter the shared cache.
        cached = get_quantizer(PositConfig(8, 1), "stochastic")
        assert cached is not seeded
        assert cached.rng is None

    def test_cache_info_reports_keys(self):
        get_quantizer(PositConfig(8, 1), "zero")
        get_quantizer(FP16, "nearest")
        info = quantizer_cache_info()
        assert info["size"] == 2
        assert ("posit(8,1)", "zero") in info["keys"]
        assert ("fp16", "nearest") in info["keys"]

    def test_unsupported_descriptor_raises(self):
        with pytest.raises(TypeError, match="make_quantizer"):
            get_quantizer(object())


class TestRoundingAdaptation:
    """Each family maps the policy's rounding onto what it supports."""

    def test_float_treats_zero_as_nearest(self, rng):
        values = rng.standard_normal(100)
        np.testing.assert_array_equal(
            get_quantizer(FP16, "zero")(values),
            np.asarray(FP16.quantize(values, mode="nearest")),
        )

    def test_fixed_treats_zero_as_nearest(self, rng):
        fmt = FixedPointFormat(2, 5)
        values = rng.standard_normal(100)
        np.testing.assert_array_equal(
            get_quantizer(fmt, "zero")(values),
            np.asarray(fmt.quantize(values, mode="nearest")),
        )

    def test_posit_honours_zero(self, rng):
        values = rng.standard_normal(100)
        cfg = PositConfig(8, 1)
        np.testing.assert_array_equal(
            get_quantizer(cfg, "zero")(values),
            np.asarray(cfg.quantize(values, mode="zero")),
        )
