"""Tests for PositConfig derived constants and validation."""

import math

import pytest

from repro.posit import PAPER_FORMATS, PositConfig, get_config


class TestPositConfigConstants:
    def test_useed_es0(self):
        assert PositConfig(8, 0).useed == 2

    def test_useed_es1(self):
        assert PositConfig(8, 1).useed == 4

    def test_useed_es2(self):
        assert PositConfig(8, 2).useed == 16

    def test_useed_es3(self):
        assert PositConfig(32, 3).useed == 256

    def test_maxpos_paper_5_1(self):
        # Table I: the largest positive (5,1) posit value is 64 = useed**(5-2).
        assert PositConfig(5, 1).maxpos == 64.0

    def test_minpos_paper_5_1(self):
        # Table I: the smallest positive (5,1) posit value is 1/64.
        assert PositConfig(5, 1).minpos == pytest.approx(1.0 / 64.0)

    def test_maxpos_is_useed_power(self):
        cfg = PositConfig(8, 1)
        assert cfg.maxpos == cfg.useed ** (cfg.n - 2)

    def test_minpos_is_reciprocal_of_maxpos(self):
        for cfg in PAPER_FORMATS.values():
            assert cfg.minpos == pytest.approx(1.0 / cfg.maxpos)

    def test_max_exponent(self):
        assert PositConfig(16, 1).max_exponent == 14 * 2
        assert PositConfig(8, 2).max_exponent == 6 * 4

    def test_nar_pattern_is_msb_only(self):
        cfg = PositConfig(8, 1)
        assert cfg.nar_pattern == 0b1000_0000

    def test_code_counts(self):
        cfg = PositConfig(8, 1)
        assert cfg.code_count == 256
        assert cfg.positive_code_count == 127

    def test_dynamic_range_grows_with_es(self):
        ranges = [PositConfig(16, es).dynamic_range_decades for es in range(4)]
        assert ranges == sorted(ranges)
        assert ranges[0] < ranges[-1]

    def test_dynamic_range_value(self):
        cfg = PositConfig(8, 0)
        expected = 2 * cfg.max_exponent * math.log10(2)
        assert cfg.dynamic_range_decades == pytest.approx(expected)

    def test_as_tuple(self):
        assert PositConfig(16, 2).as_tuple() == (16, 2)


class TestPositConfigValidation:
    def test_rejects_tiny_word(self):
        with pytest.raises(ValueError):
            PositConfig(1, 0)

    def test_rejects_negative_es(self):
        with pytest.raises(ValueError):
            PositConfig(8, -1)

    def test_rejects_non_integer(self):
        with pytest.raises(TypeError):
            PositConfig(8.0, 1)

    def test_rejects_out_of_double_range(self):
        with pytest.raises(ValueError):
            PositConfig(64, 5)

    def test_frozen(self):
        cfg = PositConfig(8, 1)
        with pytest.raises(AttributeError):
            cfg.n = 16


class TestGetConfig:
    def test_returns_equal_config(self):
        assert get_config(8, 1) == PositConfig(8, 1)

    def test_caches_instances(self):
        assert get_config(16, 2) is get_config(16, 2)

    def test_paper_formats_cover_table3_and_table5(self):
        names = set(PAPER_FORMATS)
        for required in ("posit(8,1)", "posit(8,2)", "posit(16,1)", "posit(16,2)"):
            assert required in names
