"""Tests for quire (exact accumulation) support."""

import numpy as np
import pytest

from repro.posit import PositConfig, Quire, exact_dot, fused_dot, quantize


class TestQuire:
    def test_exact_accumulation_of_products(self):
        quire = Quire(PositConfig(8, 1))
        quire.add_product(0.5, 0.25)
        quire.add_product(1.5, 2.0)
        assert quire.to_float() == pytest.approx(3.125)

    def test_accumulation_counter(self):
        quire = Quire(PositConfig(8, 1))
        for _ in range(5):
            quire.add_posit(1.0)
        assert quire.num_accumulations == 5
        assert quire.to_float() == 5.0

    def test_clear_resets_state(self):
        quire = Quire(PositConfig(8, 1))
        quire.add_posit(3.0)
        quire.clear()
        assert quire.to_float() == 0.0
        assert quire.num_accumulations == 0

    def test_cancellation_is_exact(self):
        """Sums that cancel exactly stay exact in the quire (no rounding)."""
        cfg = PositConfig(8, 1)
        quire = Quire(cfg)
        value = float(quantize(0.7, cfg, rounding="nearest"))
        for _ in range(100):
            quire.add_posit(value)
            quire.add_posit(-value)
        assert quire.to_float() == 0.0

    def test_final_posit_rounding(self):
        cfg = PositConfig(8, 1)
        quire = Quire(cfg)
        quire.add_product(1.1, 1.1)
        result = quire.to_posit_value()
        assert result == float(quantize(quire.to_float(), cfg, rounding="nearest"))

    def test_nominal_width_matches_classic_sizing(self):
        quire = Quire(PositConfig(8, 1))
        assert quire.nominal_width_bits == (8 - 2) * 2 ** (1 + 2) + 1 + 5

    def test_small_value_accumulation_not_lost(self):
        """Many tiny addends that a per-step rounding MAC would drop are kept."""
        cfg = PositConfig(8, 1)
        quire = Quire(cfg)
        quire.add_posit(16.0)
        tiny = cfg.minpos
        for _ in range(1000):
            quire.add_exact(__import__("fractions").Fraction(tiny))
        assert quire.to_float() > 16.0


class TestDotProducts:
    def test_exact_dot_matches_numpy_for_exact_inputs(self, rng):
        cfg = PositConfig(16, 1)
        a = np.asarray(quantize(rng.standard_normal(32), cfg, rounding="nearest"))
        b = np.asarray(quantize(rng.standard_normal(32), cfg, rounding="nearest"))
        result = exact_dot(a, b, cfg)
        expected = float(quantize(float(np.dot(a, b)), cfg, rounding="nearest"))
        assert result == expected

    def test_shape_mismatch_rejected(self):
        cfg = PositConfig(8, 1)
        with pytest.raises(ValueError):
            exact_dot([1.0, 2.0], [1.0], cfg)
        with pytest.raises(ValueError):
            fused_dot([1.0, 2.0], [1.0], cfg)

    def test_exact_dot_at_least_as_accurate_as_fused(self, rng):
        """The quire (EMAC) accumulation never loses to per-step rounding."""
        cfg = PositConfig(8, 0)
        worse = 0
        for trial in range(10):
            local = np.random.default_rng(trial)
            a = local.standard_normal(64)
            b = local.standard_normal(64)
            qa = np.asarray(quantize(a, cfg, rounding="nearest"))
            qb = np.asarray(quantize(b, cfg, rounding="nearest"))
            reference = float(np.dot(qa, qb))
            exact_err = abs(exact_dot(a, b, cfg) - reference)
            fused_err = abs(fused_dot(a, b, cfg) - reference)
            if exact_err > fused_err + 1e-12:
                worse += 1
        assert worse == 0

    def test_fused_dot_returns_representable_value(self, rng):
        cfg = PositConfig(8, 1)
        a = rng.standard_normal(16)
        b = rng.standard_normal(16)
        result = fused_dot(a, b, cfg)
        assert result == float(quantize(result, cfg, rounding="nearest"))
