"""Tests for the bit-exact scalar posit implementation."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.posit import (
    PositConfig,
    PositScalar,
    add,
    decode,
    decode_fields,
    div,
    encode,
    enumerate_positive_values,
    fma,
    mul,
    next_down,
    next_up,
    sub,
)

SMALL_FORMATS = [PositConfig(5, 1), PositConfig(6, 0), PositConfig(8, 0),
                 PositConfig(8, 1), PositConfig(8, 2)]


class TestSpecialPatterns:
    def test_zero_pattern_decodes_to_zero(self, paper_config):
        assert decode(0, paper_config) == 0.0

    def test_nar_pattern_decodes_to_nan(self, paper_config):
        assert math.isnan(decode(paper_config.nar_pattern, paper_config))

    def test_nar_fields_flagged(self, paper_config):
        fields = decode_fields(paper_config.nar_pattern, paper_config)
        assert fields.is_nar and not fields.is_zero

    def test_zero_fields_flagged(self, paper_config):
        fields = decode_fields(0, paper_config)
        assert fields.is_zero and not fields.is_nar

    def test_nan_encodes_to_nar(self, paper_config):
        assert encode(float("nan"), paper_config) == paper_config.nar_pattern

    def test_inf_encodes_to_nar(self, paper_config):
        assert encode(float("inf"), paper_config) == paper_config.nar_pattern
        assert encode(float("-inf"), paper_config) == paper_config.nar_pattern

    def test_zero_encodes_to_zero_pattern(self, paper_config):
        assert encode(0.0, paper_config) == 0


class TestFieldStructure:
    """Fig. 1 / Table I: sign, regime, exponent, mantissa decomposition."""

    def test_code_01000_is_one(self):
        # Table I row: 01000 -> regime 0, exponent 0, value 1.
        cfg = PositConfig(5, 1)
        fields = decode_fields(0b01000, cfg)
        assert (fields.regime, fields.exponent, fields.fraction) == (0, 0, 0.0)
        assert decode(0b01000, cfg) == 1.0

    def test_code_00001_minpos(self):
        # Table I row: 00001 -> regime -3, value 1/64.
        cfg = PositConfig(5, 1)
        fields = decode_fields(0b00001, cfg)
        assert fields.regime == -3
        assert decode(0b00001, cfg) == pytest.approx(1 / 64)

    def test_code_01111_maxpos(self):
        # Table I row: 01111 -> regime 3, value 64.
        cfg = PositConfig(5, 1)
        assert decode_fields(0b01111, cfg).regime == 3
        assert decode(0b01111, cfg) == 64.0

    def test_code_00101_fraction(self):
        # Table I row: 00101 -> regime -1, exponent 0, mantissa 1/2, value 3/8.
        cfg = PositConfig(5, 1)
        fields = decode_fields(0b00101, cfg)
        assert fields.regime == -1
        assert fields.exponent == 0
        assert fields.fraction == 0.5
        assert decode(0b00101, cfg) == pytest.approx(3 / 8)

    def test_negative_pattern_uses_twos_complement(self):
        cfg = PositConfig(8, 1)
        positive = encode(1.5, cfg)
        negative = encode(-1.5, cfg)
        assert negative == ((-positive) & 0xFF)
        assert decode(negative, cfg) == -1.5

    def test_field_widths_sum_to_word(self, paper_config):
        for code in (1, 3, 17, paper_config.positive_code_count):
            fields = decode_fields(code, paper_config)
            used = 1 + fields.regime_width + fields.exponent_width + fields.fraction_width
            assert used <= paper_config.n
            # All bits after the regime are either exponent or fraction bits.
            assert fields.exponent_width <= paper_config.es


class TestTable1Values:
    def test_all_positive_values_of_5_1(self):
        # The complete positive column of Table I.
        expected = [1 / 64, 1 / 16, 1 / 8, 1 / 4, 3 / 8, 1 / 2, 3 / 4, 1,
                    3 / 2, 2, 3, 4, 8, 16, 64]
        assert enumerate_positive_values(PositConfig(5, 1)) == pytest.approx(expected)

    def test_positive_values_strictly_increasing(self):
        for cfg in SMALL_FORMATS:
            values = enumerate_positive_values(cfg)
            assert all(a < b for a, b in zip(values, values[1:]))

    def test_extremes_match_config(self):
        for cfg in SMALL_FORMATS:
            values = enumerate_positive_values(cfg)
            assert values[0] == pytest.approx(cfg.minpos)
            assert values[-1] == pytest.approx(cfg.maxpos)


class TestEncodeDecodeRoundTrip:
    @pytest.mark.parametrize("cfg", SMALL_FORMATS, ids=str)
    def test_exhaustive_roundtrip(self, cfg):
        """encode(decode(p)) == p for every non-NaR pattern (both signs)."""
        for code in range(cfg.code_count):
            value = decode(code, cfg)
            if math.isnan(value):
                continue
            assert encode(value, cfg) == code

    @pytest.mark.parametrize("rounding", ["zero", "nearest"])
    def test_representable_values_are_fixed_points(self, paper_config, rounding, rng):
        codes = rng.integers(1, paper_config.positive_code_count, size=50)
        for code in codes:
            value = decode(int(code), paper_config)
            assert decode(encode(value, paper_config, rounding=rounding), paper_config) == value

    def test_overflow_clamps_to_maxpos(self, paper_config):
        big = paper_config.maxpos * 10
        assert decode(encode(big, paper_config), paper_config) == paper_config.maxpos

    def test_underflow_zero_mode_flushes(self, paper_config):
        tiny = paper_config.minpos / 4
        assert encode(tiny, paper_config, rounding="zero") == 0

    def test_underflow_nearest_mode_rounds_to_minpos(self, paper_config):
        near = paper_config.minpos * 0.9
        assert decode(encode(near, paper_config, rounding="nearest"), paper_config) == (
            pytest.approx(paper_config.minpos)
        )

    def test_rounding_zero_never_increases_magnitude(self, paper_config, rng):
        for value in rng.uniform(-50, 50, size=100):
            result = decode(encode(float(value), paper_config, rounding="zero"), paper_config)
            assert abs(result) <= abs(value) + 1e-15

    def test_rounding_nearest_picks_closest(self, paper_config, rng):
        for value in rng.uniform(0.01, 10.0, size=100):
            bits = encode(float(value), paper_config, rounding="nearest")
            chosen = decode(bits, paper_config)
            neighbours = []
            if bits > 1:
                neighbours.append(decode(bits - 1, paper_config))
            if bits < paper_config.positive_code_count:
                neighbours.append(decode(bits + 1, paper_config))
            for other in neighbours:
                assert abs(chosen - value) <= abs(other - value) + 1e-12

    def test_directed_rounding_brackets_value(self, paper_config, rng):
        for value in rng.uniform(0.01, 10.0, size=50):
            down = decode(encode(float(value), paper_config, rounding="down"), paper_config)
            up = decode(encode(float(value), paper_config, rounding="up"), paper_config)
            assert down <= value <= up


class TestOrderingAndNeighbours:
    def test_next_up_increases_value(self, paper_config):
        code = encode(1.0, paper_config)
        assert decode(next_up(code, paper_config), paper_config) > 1.0

    def test_next_down_decreases_value(self, paper_config):
        code = encode(1.0, paper_config)
        assert decode(next_down(code, paper_config), paper_config) < 1.0

    def test_next_up_of_maxpos_raises(self, paper_config):
        maxpos_code = paper_config.positive_code_count
        with pytest.raises(OverflowError):
            next_up(maxpos_code, paper_config)

    def test_monotonicity_across_sign(self):
        cfg = PositConfig(6, 1)
        # Walking codes as signed integers walks values monotonically.
        values = []
        code = encode(-cfg.maxpos, cfg)
        for _ in range(cfg.code_count - 2):
            values.append(decode(code, cfg))
            code = (code + 1) % cfg.code_count
            if code == cfg.nar_pattern:
                break
        assert all(a < b for a, b in zip(values, values[1:]))


class TestScalarArithmetic:
    def test_add_exact_values(self):
        cfg = PositConfig(8, 1)
        a, b = encode(1.5, cfg), encode(2.0, cfg)
        assert decode(add(a, b, cfg), cfg) == 3.5

    def test_sub_exact_values(self):
        cfg = PositConfig(8, 1)
        a, b = encode(4.0, cfg), encode(1.0, cfg)
        assert decode(sub(a, b, cfg), cfg) == 3.0

    def test_mul_exact_values(self):
        cfg = PositConfig(8, 1)
        a, b = encode(1.5, cfg), encode(2.0, cfg)
        assert decode(mul(a, b, cfg), cfg) == 3.0

    def test_div_by_zero_gives_nar(self):
        cfg = PositConfig(8, 1)
        assert div(encode(1.0, cfg), 0, cfg) == cfg.nar_pattern

    def test_nar_propagates_through_ops(self):
        cfg = PositConfig(8, 1)
        nar = cfg.nar_pattern
        one = encode(1.0, cfg)
        assert add(nar, one, cfg) == nar
        assert mul(one, nar, cfg) == nar
        assert fma(nar, one, one, cfg) == nar

    def test_fma_single_rounding(self):
        # 1.25 * 3 + 0.5 = 4.25; posit(8,1) has a step of 0.5 in [4, 8), so the
        # exact result is a tie between 4.0 and 4.5 and RNE picks the even code (4.0).
        cfg = PositConfig(8, 1)
        a, b, c = encode(1.25, cfg), encode(3.0, cfg), encode(0.5, cfg)
        assert decode(fma(a, b, c, cfg), cfg) == 4.0

    def test_addition_commutative(self, paper_config, rng):
        for _ in range(20):
            a = encode(float(rng.uniform(-5, 5)), paper_config)
            b = encode(float(rng.uniform(-5, 5)), paper_config)
            assert add(a, b, paper_config) == add(b, a, paper_config)


class TestPositScalarWrapper:
    def test_construction_and_value(self):
        cfg = PositConfig(8, 1)
        x = PositScalar.from_float(1.5, cfg)
        assert float(x) == 1.5
        assert not x.is_nar and not x.is_zero

    def test_arithmetic_operators(self):
        cfg = PositConfig(16, 1)
        a = PositScalar.from_float(1.5, cfg)
        b = PositScalar.from_float(2.25, cfg)
        assert float(a + b) == 3.75
        assert float(a * b) == 3.375
        assert float(b - a) == 0.75
        assert float(b / a) == 1.5
        assert float(-a) == -1.5
        assert float(abs(-a)) == 1.5

    def test_mixed_scalar_operands(self):
        cfg = PositConfig(16, 1)
        a = PositScalar.from_float(2.0, cfg)
        assert float(a + 1.0) == 3.0
        assert float(3.0 * a) == 6.0

    def test_comparisons(self):
        cfg = PositConfig(8, 1)
        a = PositScalar.from_float(1.0, cfg)
        b = PositScalar.from_float(2.0, cfg)
        assert a < b and b > a and a <= a and b >= b
        assert a == PositScalar.from_float(1.0, cfg)

    def test_format_mixing_rejected(self):
        a = PositScalar.from_float(1.0, PositConfig(8, 1))
        b = PositScalar.from_float(1.0, PositConfig(16, 1))
        with pytest.raises(ValueError):
            _ = a + b

    def test_fields_accessor(self):
        x = PositScalar.from_float(1.0, PositConfig(8, 1))
        assert x.fields().regime == 0


class TestHypothesisProperties:
    @given(value=st.floats(min_value=-1e6, max_value=1e6,
                           allow_nan=False, allow_infinity=False))
    @settings(max_examples=200, deadline=None)
    def test_roundtrip_is_idempotent(self, value):
        """Quantizing twice equals quantizing once (projection property)."""
        cfg = PositConfig(16, 2)
        once = decode(encode(value, cfg, rounding="nearest"), cfg)
        twice = decode(encode(once, cfg, rounding="nearest"), cfg)
        assert once == twice

    @given(value=st.floats(min_value=1e-6, max_value=1e6,
                           allow_nan=False, allow_infinity=False))
    @settings(max_examples=200, deadline=None)
    def test_encode_monotonic_in_value(self, value):
        """Larger magnitudes never get a smaller positive code."""
        cfg = PositConfig(16, 1)
        a = encode(value, cfg, rounding="nearest")
        b = encode(value * 1.25, cfg, rounding="nearest")
        assert b >= a

    @given(value=st.floats(min_value=-1e4, max_value=1e4,
                           allow_nan=False, allow_infinity=False))
    @settings(max_examples=200, deadline=None)
    def test_negation_symmetry(self, value):
        """encode(-x) is the two's complement of encode(x)."""
        cfg = PositConfig(16, 2)
        pos = encode(value, cfg, rounding="nearest")
        neg = encode(-value, cfg, rounding="nearest")
        assert neg == ((-pos) & (cfg.code_count - 1))

    @given(value=st.floats(min_value=1e-7, max_value=1e7,
                           allow_nan=False, allow_infinity=False),
           es=st.integers(min_value=0, max_value=3))
    @settings(max_examples=150, deadline=None)
    def test_relative_error_bound_within_range(self, value, es):
        """Within the golden zone, nearest rounding error is below half ULP of the fraction."""
        cfg = PositConfig(16, es)
        if not (cfg.minpos * 4 <= value <= cfg.maxpos / 4):
            return
        decoded = decode(encode(value, cfg, rounding="nearest"), cfg)
        fields = decode_fields(encode(value, cfg, rounding="nearest"), cfg)
        # Relative error bounded by 2**-(fraction_bits) at this magnitude.
        bound = 2.0 ** (-(fields.fraction_width)) if fields.fraction_width else 1.0
        assert abs(decoded - value) / value <= bound
