"""Tests for the reduced-precision float baseline formats."""

import numpy as np
import pytest

from repro.posit import (
    BFLOAT16,
    FP8_E4M3,
    FP8_E5M2,
    FP16,
    FP32,
    FloatFormat,
    FloatQuantizer,
    float_quantize,
)


class TestFormatConstants:
    def test_standard_widths(self):
        assert FP32.bits == 32
        assert FP16.bits == 16
        assert BFLOAT16.bits == 16
        assert FP8_E4M3.bits == 8
        assert FP8_E5M2.bits == 8

    def test_fp16_range(self):
        assert FP16.max_value == pytest.approx(65504.0)
        assert FP16.min_normal == pytest.approx(2.0**-14)
        assert FP16.min_subnormal == pytest.approx(2.0**-24)

    def test_bias(self):
        assert FP16.bias == 15
        assert FP32.bias == 127
        assert FP8_E4M3.bias == 7

    def test_validation(self):
        with pytest.raises(ValueError):
            FloatFormat(1, 3)
        with pytest.raises(ValueError):
            FloatFormat(5, -1)


class TestFloatQuantize:
    def test_fp32_is_float32_cast(self, rng):
        values = rng.standard_normal(100)
        np.testing.assert_array_equal(float_quantize(values, FP32),
                                      values.astype(np.float32).astype(np.float64))

    def test_fp16_matches_numpy_half(self, rng):
        values = rng.standard_normal(500) * 10
        ours = float_quantize(values, FP16)
        numpy_half = values.astype(np.float16).astype(np.float64)
        np.testing.assert_allclose(ours, numpy_half, rtol=0, atol=0)

    def test_exactly_representable_values_unchanged(self):
        values = np.array([0.5, 1.0, 1.5, -2.0, 0.0])
        for fmt in (FP16, BFLOAT16, FP8_E4M3, FP8_E5M2):
            np.testing.assert_array_equal(float_quantize(values, fmt), values)

    def test_saturation_at_max(self):
        assert float_quantize(1e6, FP8_E4M3) == FP8_E4M3.max_value
        assert float_quantize(-1e6, FP8_E4M3) == -FP8_E4M3.max_value
        assert float_quantize(np.inf, FP16) == FP16.max_value

    def test_flush_below_subnormal(self):
        tiny = FP8_E4M3.min_subnormal / 4
        assert float_quantize(tiny, FP8_E4M3) == 0.0

    def test_subnormals_kept(self):
        value = FP16.min_subnormal * 3
        assert float_quantize(value, FP16) == pytest.approx(value)

    def test_nan_propagates(self):
        assert np.isnan(float_quantize(np.nan, FP16))

    def test_fp8_precision_coarser_than_fp16(self, rng):
        values = rng.standard_normal(200)
        err8 = np.abs(float_quantize(values, FP8_E4M3) - values).mean()
        err16 = np.abs(float_quantize(values, FP16) - values).mean()
        assert err8 > err16

    def test_stochastic_rounding_unbiased(self):
        rng = np.random.default_rng(0)
        value = 1.0 + 2.0**-11  # halfway between FP16 grid points near 1
        samples = float_quantize(np.full(8000, value), FP16, rng=rng, rounding="stochastic")
        assert samples.mean() == pytest.approx(value, rel=1e-3)

    def test_unknown_rounding_rejected(self):
        with pytest.raises(ValueError):
            float_quantize(1.0, FP16, rounding="bogus")

    def test_scalar_shape(self):
        assert np.ndim(float_quantize(1.3, FP16)) == 0


class TestFloatQuantizerObject:
    def test_callable(self, rng):
        quantizer = FloatQuantizer(FP16)
        values = rng.standard_normal(10)
        np.testing.assert_array_equal(quantizer(values), float_quantize(values, FP16))

    def test_dynamic_range_ordering(self):
        # E5M2 trades precision for range compared to E4M3.
        assert FP8_E5M2.max_value > FP8_E4M3.max_value
        assert FP8_E5M2.mantissa_bits < FP8_E4M3.mantissa_bits
