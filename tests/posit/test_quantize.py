"""Tests for the vectorized quantizer (Algorithm 1 and its rounding variants)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.posit import (
    PositConfig,
    PositQuantizer,
    bits_to_float,
    decode,
    encode,
    quantize,
    quantize_to_bits,
)

PAPER_FORMATS = [PositConfig(8, 0), PositConfig(8, 1), PositConfig(8, 2),
                 PositConfig(16, 1), PositConfig(16, 2)]


def _log_uniform(rng, size, low_exp=-25, high_exp=25):
    signs = rng.choice([-1.0, 1.0], size=size)
    return signs * np.exp2(rng.uniform(low_exp, high_exp, size=size)) * rng.uniform(1, 2, size=size)


class TestAgainstScalarReference:
    """The vectorized path must agree bit-for-bit with the scalar reference."""

    @pytest.mark.parametrize("cfg", PAPER_FORMATS, ids=str)
    @pytest.mark.parametrize("rounding", ["zero", "nearest"])
    def test_matches_scalar_encode(self, cfg, rounding, rng):
        values = _log_uniform(rng, 500)
        vectorized = quantize(values, cfg, rounding=rounding)
        reference = np.array(
            [decode(encode(float(v), cfg, rounding=rounding), cfg) for v in values]
        )
        np.testing.assert_array_equal(vectorized, reference)

    def test_matches_scalar_on_large_format(self, rng):
        # posit(32,3) exercises the algorithmic (non-grid) path.
        cfg = PositConfig(32, 3)
        values = _log_uniform(rng, 200, low_exp=-60, high_exp=60)
        vectorized = quantize(values, cfg, rounding="zero")
        reference = np.array([decode(encode(float(v), cfg, rounding="zero"), cfg) for v in values])
        np.testing.assert_array_equal(vectorized, reference)


class TestAlgorithm1Semantics:
    """Line-by-line behaviour of Algorithm 1 (round-to-zero operator)."""

    def test_zero_maps_to_zero(self, paper_config):
        assert quantize(0.0, paper_config) == 0.0

    def test_underflow_flushes_to_zero(self, paper_config):
        tiny = paper_config.minpos / 2
        assert quantize(tiny, paper_config, rounding="zero") == 0.0
        assert quantize(-tiny, paper_config, rounding="zero") == 0.0

    def test_overflow_clips_to_maxpos(self, paper_config):
        assert quantize(paper_config.maxpos * 100, paper_config) == paper_config.maxpos
        assert quantize(-paper_config.maxpos * 100, paper_config) == -paper_config.maxpos

    def test_truncation_never_increases_magnitude(self, paper_config, rng):
        values = _log_uniform(rng, 200)
        quantized = quantize(values, paper_config, rounding="zero")
        assert np.all(np.abs(quantized) <= np.abs(values) + 1e-15)

    def test_sign_preserved(self, paper_config, rng):
        values = _log_uniform(rng, 200)
        quantized = quantize(values, paper_config, rounding="zero")
        nonzero = quantized != 0
        assert np.all(np.sign(quantized[nonzero]) == np.sign(values[nonzero]))

    def test_exact_values_unchanged(self, paper_config):
        # Values already on the grid pass through untouched.
        exact = np.array([decode(c, paper_config) for c in (1, 5, 20, 63)])
        np.testing.assert_array_equal(quantize(exact, paper_config), exact)

    def test_nan_propagates(self, paper_config):
        result = quantize(np.array([1.0, np.nan, np.inf]), paper_config)
        assert result[0] == quantize(1.0, paper_config)
        assert np.isnan(result[1]) and np.isnan(result[2])

    def test_scalar_input_returns_scalar_shape(self, paper_config):
        result = quantize(3.14, paper_config)
        assert np.ndim(result) == 0

    def test_preserves_shape(self, paper_config, rng):
        values = rng.standard_normal((3, 4, 5))
        assert quantize(values, paper_config).shape == (3, 4, 5)

    def test_table1_example_values(self):
        # Quantizing to (5,1): 0.35 truncates to 1/4 ... wait 0.35 is between
        # 1/4 and 3/8, round-to-zero gives 1/4; 0.4 gives 3/8.
        cfg = PositConfig(5, 1)
        assert quantize(0.35, cfg, rounding="zero") == pytest.approx(0.25)
        assert quantize(0.4, cfg, rounding="zero") == pytest.approx(0.375)
        assert quantize(5.0, cfg, rounding="zero") == pytest.approx(4.0)


class TestRoundingModes:
    def test_nearest_picks_closest_grid_point(self, paper_config, rng):
        values = _log_uniform(rng, 200, low_exp=-5, high_exp=5)
        nearest = quantize(values, paper_config, rounding="nearest")
        truncated = quantize(values, paper_config, rounding="zero")
        assert np.all(np.abs(nearest - values) <= np.abs(truncated - values) + 1e-15)

    def test_stochastic_is_unbiased_on_midpoint(self):
        cfg = PositConfig(8, 1)
        lower, upper = 1.0, decode(encode(1.0, cfg) + 1, cfg)
        midpoint = (lower + upper) / 2
        rng = np.random.default_rng(7)
        samples = quantize(np.full(4000, midpoint), cfg, rounding="stochastic", rng=rng)
        fraction_up = np.mean(samples == upper)
        assert 0.4 < fraction_up < 0.6

    def test_stochastic_expectation_close_to_value(self):
        cfg = PositConfig(8, 1)
        value = 1.3
        rng = np.random.default_rng(3)
        samples = quantize(np.full(8000, value), cfg, rounding="stochastic", rng=rng)
        assert np.mean(samples) == pytest.approx(value, rel=0.02)

    def test_stochastic_only_uses_bracketing_values(self):
        cfg = PositConfig(8, 1)
        value = 2.7
        rng = np.random.default_rng(11)
        samples = np.unique(quantize(np.full(500, value), cfg, rounding="stochastic", rng=rng))
        assert len(samples) <= 2
        assert np.all(samples >= quantize(value, cfg, rounding="zero"))

    def test_unknown_mode_rejected(self, paper_config):
        with pytest.raises(ValueError):
            quantize(1.0, paper_config, rounding="bogus")


class TestBitConversion:
    def test_bits_roundtrip(self, paper_config, rng):
        values = _log_uniform(rng, 300)
        bits = quantize_to_bits(values, paper_config)
        recovered = bits_to_float(bits, paper_config)
        np.testing.assert_array_equal(recovered, quantize(values, paper_config))

    def test_bits_in_valid_range(self, paper_config, rng):
        bits = quantize_to_bits(_log_uniform(rng, 100), paper_config)
        assert np.all(bits >= 0)
        assert np.all(bits < paper_config.code_count)

    def test_nar_bits_for_nonfinite(self, paper_config):
        bits = quantize_to_bits(np.array([np.nan, np.inf]), paper_config)
        assert np.all(bits == paper_config.nar_pattern)

    def test_negative_values_use_twos_complement(self):
        cfg = PositConfig(8, 1)
        bits = quantize_to_bits(np.array([1.5, -1.5]), cfg)
        assert bits[1] == ((-bits[0]) & 0xFF)

    def test_scalar_bits(self, paper_config):
        assert np.ndim(quantize_to_bits(2.0, paper_config)) == 0


class TestPositQuantizerObject:
    def test_callable_interface(self, paper_config, rng):
        quantizer = PositQuantizer(paper_config)
        values = rng.standard_normal(50)
        np.testing.assert_array_equal(quantizer(values), quantize(values, paper_config))

    def test_stat_tracking(self, rng):
        cfg = PositConfig(8, 1)
        quantizer = PositQuantizer(cfg, track_stats=True)
        values = np.array([cfg.minpos / 10, 1.0, cfg.maxpos * 10])
        quantizer(values)
        assert quantizer.stats["calls"] == 1
        assert quantizer.stats["elements"] == 3
        assert quantizer.stats["underflows"] == 1
        assert quantizer.stats["saturations"] == 1
        quantizer.reset_stats()
        assert quantizer.stats["calls"] == 0

    def test_invalid_rounding_rejected(self, paper_config):
        with pytest.raises(ValueError):
            PositQuantizer(paper_config, rounding="nope")

    def test_to_bits_matches_function(self, paper_config, rng):
        quantizer = PositQuantizer(paper_config)
        values = rng.standard_normal(20)
        np.testing.assert_array_equal(quantizer.to_bits(values),
                                      quantize_to_bits(values, paper_config))


class TestHypothesisProperties:
    @given(values=hnp.arrays(np.float64, shape=st.integers(1, 64),
                             elements=st.floats(-1e8, 1e8, allow_nan=False)))
    @settings(max_examples=100, deadline=None)
    def test_idempotent(self, values):
        """Quantization is a projection: applying it twice changes nothing."""
        cfg = PositConfig(8, 1)
        once = quantize(values, cfg, rounding="zero")
        twice = quantize(once, cfg, rounding="zero")
        np.testing.assert_array_equal(once, twice)

    @given(values=hnp.arrays(np.float64, shape=st.integers(1, 64),
                             elements=st.floats(-1e6, 1e6, allow_nan=False)))
    @settings(max_examples=100, deadline=None)
    def test_outputs_are_representable(self, values):
        """Every output value round-trips exactly through the bit encoding."""
        cfg = PositConfig(16, 2)
        quantized = quantize(values, cfg, rounding="nearest")
        bits = quantize_to_bits(quantized, cfg, rounding="nearest")
        np.testing.assert_array_equal(bits_to_float(bits, cfg), quantized)

    @given(values=hnp.arrays(np.float64, shape=st.integers(2, 64),
                             elements=st.floats(1e-4, 1e4, allow_nan=False)),
           data=st.data())
    @settings(max_examples=100, deadline=None)
    def test_monotone(self, values, data):
        """Quantization preserves ordering (monotone non-decreasing map)."""
        cfg = PositConfig(8, 2)
        ordered = np.sort(values)
        quantized = quantize(ordered, cfg, rounding="nearest")
        assert np.all(np.diff(quantized) >= 0)

    @given(scale_power=st.integers(-20, 20),
           values=hnp.arrays(np.float64, shape=st.integers(1, 32),
                             elements=st.floats(1e-6, 1e6, allow_nan=False)))
    @settings(max_examples=100, deadline=None)
    def test_power_of_two_scale_is_lossless_in_carrier(self, scale_power, values):
        """Dividing and re-multiplying by the Eq. (3) scale factor is exact.

        The scale factor S_f is a power of two precisely so that applying
        ``P(x / S_f) * S_f`` introduces no error beyond the posit rounding
        itself: the carrier-format scaling is lossless, and the quantized
        result is ``S_f`` times an exactly representable posit value.
        """
        cfg = PositConfig(16, 2)
        scale = 2.0**scale_power
        # Carrier-level round trip is exact.
        np.testing.assert_array_equal((values / scale) * scale, values)
        # The shifted quantization equals scale times a representable value.
        shifted = quantize(values / scale, cfg, rounding="zero") * scale
        np.testing.assert_array_equal(
            shifted / scale, quantize(shifted / scale, cfg, rounding="zero")
        )
