"""Tests for the value-table generator (Table I reproduction)."""

from fractions import Fraction

import pytest

from repro.posit import PositConfig, code_space_summary, format_table, positive_value_table

#: The exact contents of Table I of the paper (positive values of the (5,1) posit).
TABLE_I = [
    ("00000", None, None, None, Fraction(0)),
    ("00001", -3, 0, Fraction(0), Fraction(1, 64)),
    ("00010", -2, 0, Fraction(0), Fraction(1, 16)),
    ("00011", -2, 1, Fraction(0), Fraction(1, 8)),
    ("00100", -1, 0, Fraction(0), Fraction(1, 4)),
    ("00101", -1, 0, Fraction(1, 2), Fraction(3, 8)),
    ("00110", -1, 1, Fraction(0), Fraction(1, 2)),
    ("00111", -1, 1, Fraction(1, 2), Fraction(3, 4)),
    ("01000", 0, 0, Fraction(0), Fraction(1)),
    ("01001", 0, 0, Fraction(1, 2), Fraction(3, 2)),
    ("01010", 0, 1, Fraction(0), Fraction(2)),
    ("01011", 0, 1, Fraction(1, 2), Fraction(3)),
    ("01100", 1, 0, Fraction(0), Fraction(4)),
    ("01101", 1, 1, Fraction(0), Fraction(8)),
    ("01110", 2, 0, Fraction(0), Fraction(16)),
    ("01111", 3, 0, Fraction(0), Fraction(64)),
]


class TestTable1Reproduction:
    def test_row_count_matches_paper(self):
        rows = positive_value_table(PositConfig(5, 1))
        assert len(rows) == len(TABLE_I) == 16

    def test_every_row_matches_paper(self):
        rows = positive_value_table(PositConfig(5, 1))
        for row, (binary, regime, exponent, mantissa, value) in zip(rows, TABLE_I):
            assert row.binary == binary
            assert row.value == value
            if regime is not None:
                assert row.regime == regime
                assert row.exponent == exponent
                assert row.mantissa == mantissa

    def test_values_exact_fractions(self):
        rows = positive_value_table(PositConfig(5, 1))
        assert all(isinstance(row.value, Fraction) for row in rows)

    def test_without_zero_row(self):
        rows = positive_value_table(PositConfig(5, 1), include_zero=False)
        assert len(rows) == 15
        assert rows[0].value == Fraction(1, 64)

    def test_values_increasing(self):
        rows = positive_value_table(PositConfig(6, 2), include_zero=False)
        values = [row.value for row in rows]
        assert values == sorted(values)
        assert len(set(values)) == len(values)

    def test_as_dict_round_trip(self):
        row = positive_value_table(PositConfig(5, 1))[8]
        as_dict = row.as_dict()
        assert as_dict["binary"] == "01000"
        assert as_dict["value"] == Fraction(1)

    def test_refuses_huge_formats(self):
        with pytest.raises(ValueError):
            positive_value_table(PositConfig(20, 1))


class TestFormattedTable:
    def test_contains_header_and_all_rows(self):
        text = format_table(PositConfig(5, 1))
        assert "Binary Code" in text
        assert "00000" in text and "01111" in text
        assert "1/64" in text and "3/8" in text

    def test_zero_row_uses_placeholders(self):
        first_data_line = format_table(PositConfig(5, 1)).splitlines()[3]
        assert "x" in first_data_line


class TestCodeSpaceSummary:
    def test_precision_concentrated_near_one(self):
        # The binade with the most representable values must be adjacent to
        # magnitude 1 (scale 0 or -1) — the paper's "precision symmetrical
        # about 1" observation.
        summary = code_space_summary(PositConfig(8, 1))
        assert summary["binade_of_max_precision"] in (-1, 0)

    def test_total_positive_values(self):
        summary = code_space_summary(PositConfig(8, 0))
        assert summary["positive_values"] == 127

    def test_binade_counts_taper_towards_extremes(self):
        summary = code_space_summary(PositConfig(8, 1))
        per_binade = summary["values_per_binade"]
        scales = sorted(per_binade)
        # The extreme binades hold a single value each; the central ones hold many.
        assert per_binade[scales[0]] <= 2
        assert per_binade[scales[-1]] <= 2
        assert summary["max_values_in_a_binade"] >= 8
