"""Tests for convolution and pooling primitives (forward values and gradients)."""

import numpy as np
import pytest

from repro.tensor import (
    Tensor,
    avg_pool2d,
    col2im,
    conv2d,
    global_avg_pool2d,
    im2col,
    max_pool2d,
)


def reference_conv2d(x, w, b, stride, padding):
    """Naive direct convolution used as ground truth."""
    n, c_in, h, wd = x.shape
    c_out, _, kh, kw = w.shape
    sh, sw = stride
    ph, pw = padding
    xp = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    out_h = (h + 2 * ph - kh) // sh + 1
    out_w = (wd + 2 * pw - kw) // sw + 1
    out = np.zeros((n, c_out, out_h, out_w))
    for i in range(out_h):
        for j in range(out_w):
            patch = xp[:, :, i * sh:i * sh + kh, j * sw:j * sw + kw]
            out[:, :, i, j] = np.tensordot(patch, w, axes=([1, 2, 3], [1, 2, 3]))
    if b is not None:
        out += b.reshape(1, -1, 1, 1)
    return out


class TestIm2Col:
    def test_shape(self):
        x = np.random.default_rng(0).standard_normal((2, 3, 8, 8))
        cols = im2col(x, (3, 3), (1, 1), (1, 1))
        assert cols.shape == (2, 3 * 9, 64)

    def test_values_for_identity_kernel_position(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        cols = im2col(x, (1, 1), (1, 1), (0, 0))
        np.testing.assert_array_equal(cols.ravel(), x.ravel())

    def test_col2im_is_adjoint_of_im2col(self, rng):
        """<im2col(x), y> == <x, col2im(y)> — the defining adjoint property."""
        x = rng.standard_normal((2, 3, 6, 6))
        y = rng.standard_normal((2, 3 * 9, 16))
        lhs = np.sum(im2col(x, (3, 3), (1, 1), (0, 0)) * y)
        rhs = np.sum(x * col2im(y, x.shape, (3, 3), (1, 1), (0, 0)))
        assert lhs == pytest.approx(rhs)

    def test_invalid_output_size_raises(self):
        x = np.zeros((1, 1, 2, 2))
        with pytest.raises(ValueError):
            im2col(x, (5, 5), (1, 1), (0, 0))


class TestConv2dForward:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1), ((2, 1), (1, 0))])
    def test_matches_naive_convolution(self, rng, stride, padding):
        x = rng.standard_normal((2, 3, 7, 9))
        w = rng.standard_normal((4, 3, 3, 3))
        b = rng.standard_normal(4)
        stride_pair = stride if isinstance(stride, tuple) else (stride, stride)
        padding_pair = padding if isinstance(padding, tuple) else (padding, padding)
        out = conv2d(Tensor(x), Tensor(w), Tensor(b), stride=stride, padding=padding)
        expected = reference_conv2d(x, w, b, stride_pair, padding_pair)
        np.testing.assert_allclose(out.data, expected, atol=1e-10)

    def test_no_bias(self, rng):
        x = rng.standard_normal((1, 2, 5, 5))
        w = rng.standard_normal((3, 2, 3, 3))
        out = conv2d(Tensor(x), Tensor(w), None, padding=1)
        expected = reference_conv2d(x, w, None, (1, 1), (1, 1))
        np.testing.assert_allclose(out.data, expected, atol=1e-10)

    def test_1x1_convolution_is_channel_mixing(self, rng):
        x = rng.standard_normal((2, 3, 4, 4))
        w = rng.standard_normal((5, 3, 1, 1))
        out = conv2d(Tensor(x), Tensor(w), None)
        expected = np.einsum("oc,nchw->nohw", w[:, :, 0, 0], x)
        np.testing.assert_allclose(out.data, expected, atol=1e-10)

    def test_channel_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            conv2d(Tensor(np.zeros((1, 3, 5, 5))), Tensor(np.zeros((2, 4, 3, 3))))


class TestConv2dGradients:
    def test_gradcheck_all_inputs(self, rng, numgrad):
        x_data = rng.standard_normal((2, 2, 5, 5))
        w_data = rng.standard_normal((3, 2, 3, 3))
        b_data = rng.standard_normal(3)

        def loss():
            out = conv2d(Tensor(x_data), Tensor(w_data), Tensor(b_data), stride=2, padding=1)
            return float((out * out).sum().item())

        x = Tensor(x_data, requires_grad=True)
        w = Tensor(w_data, requires_grad=True)
        b = Tensor(b_data, requires_grad=True)
        out = conv2d(x, w, b, stride=2, padding=1)
        (out * out).sum().backward()
        np.testing.assert_allclose(x.grad, numgrad(loss, x_data), atol=1e-5)
        np.testing.assert_allclose(w.grad, numgrad(loss, w_data), atol=1e-5)
        np.testing.assert_allclose(b.grad, numgrad(loss, b_data), atol=1e-5)

    def test_gradients_only_for_tensors_requiring_grad(self, rng):
        x = Tensor(rng.standard_normal((1, 2, 4, 4)))
        w = Tensor(rng.standard_normal((2, 2, 3, 3)), requires_grad=True)
        out = conv2d(x, w, None, padding=1)
        out.sum().backward()
        assert x.grad is None
        assert w.grad is not None


class TestPooling:
    def test_max_pool_values(self):
        x = np.array([[[[1.0, 2.0], [3.0, 4.0]]]])
        out = max_pool2d(Tensor(x), 2)
        assert out.data.item() == 4.0

    def test_max_pool_gradient_goes_to_max(self):
        x = Tensor(np.array([[[[1.0, 2.0], [3.0, 4.0]]]]), requires_grad=True)
        max_pool2d(x, 2).sum().backward()
        np.testing.assert_array_equal(x.grad, [[[[0, 0], [0, 1.0]]]])

    def test_max_pool_gradcheck(self, rng, numgrad):
        x_data = rng.standard_normal((2, 3, 6, 6))

        def loss():
            return float((max_pool2d(Tensor(x_data), 2) ** 2).sum().item())

        x = Tensor(x_data, requires_grad=True)
        (max_pool2d(x, 2) ** 2).sum().backward()
        np.testing.assert_allclose(x.grad, numgrad(loss, x_data), atol=1e-5)

    def test_max_pool_stride_and_padding(self, rng):
        x = rng.standard_normal((1, 2, 7, 7))
        out = max_pool2d(Tensor(x), 3, stride=2, padding=1)
        assert out.shape == (1, 2, 4, 4)

    def test_avg_pool_values(self):
        x = np.array([[[[1.0, 2.0], [3.0, 4.0]]]])
        assert avg_pool2d(Tensor(x), 2).data.item() == 2.5

    def test_avg_pool_gradient_is_uniform(self):
        x = Tensor(np.ones((1, 1, 4, 4)), requires_grad=True)
        avg_pool2d(x, 2).sum().backward()
        np.testing.assert_allclose(x.grad, np.full((1, 1, 4, 4), 0.25))

    def test_avg_pool_gradcheck(self, rng, numgrad):
        x_data = rng.standard_normal((1, 2, 4, 4))

        def loss():
            return float((avg_pool2d(Tensor(x_data), 2) ** 2).sum().item())

        x = Tensor(x_data, requires_grad=True)
        (avg_pool2d(x, 2) ** 2).sum().backward()
        np.testing.assert_allclose(x.grad, numgrad(loss, x_data), atol=1e-6)

    def test_global_avg_pool(self, rng):
        x = rng.standard_normal((2, 3, 5, 5))
        out = global_avg_pool2d(Tensor(x))
        assert out.shape == (2, 3, 1, 1)
        np.testing.assert_allclose(out.data, x.mean(axis=(2, 3), keepdims=True))
