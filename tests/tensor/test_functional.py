"""Tests for functional ops: softmax, losses, batch norm, dropout, accuracy."""

import numpy as np
import pytest

from repro.tensor import (
    Tensor,
    accuracy,
    batch_norm,
    cross_entropy,
    dropout,
    linear,
    log_softmax,
    mse_loss,
    nll_loss,
    one_hot,
    softmax,
)
from repro.tensor.ops import concatenate, stack


class TestLinear:
    def test_matches_manual_affine(self, rng):
        x = rng.standard_normal((4, 3))
        w = rng.standard_normal((5, 3))
        b = rng.standard_normal(5)
        out = linear(Tensor(x), Tensor(w), Tensor(b))
        np.testing.assert_allclose(out.data, x @ w.T + b)

    def test_gradcheck(self, rng, numgrad):
        x_data = rng.standard_normal((3, 4))
        w_data = rng.standard_normal((2, 4))

        def loss():
            return float((linear(Tensor(x_data), Tensor(w_data)) ** 2).sum().item())

        x = Tensor(x_data, requires_grad=True)
        w = Tensor(w_data, requires_grad=True)
        (linear(x, w) ** 2).sum().backward()
        np.testing.assert_allclose(x.grad, numgrad(loss, x_data), atol=1e-6)
        np.testing.assert_allclose(w.grad, numgrad(loss, w_data), atol=1e-6)


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        logits = rng.standard_normal((5, 7))
        probs = softmax(Tensor(logits)).data
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(5))
        assert np.all(probs >= 0)

    def test_shift_invariance(self, rng):
        logits = rng.standard_normal((3, 4))
        a = softmax(Tensor(logits)).data
        b = softmax(Tensor(logits + 100.0)).data
        np.testing.assert_allclose(a, b, atol=1e-12)

    def test_numerical_stability_with_large_logits(self):
        probs = softmax(Tensor(np.array([[1000.0, 0.0, -1000.0]]))).data
        assert np.all(np.isfinite(probs))
        assert probs[0, 0] == pytest.approx(1.0)

    def test_log_softmax_matches_log_of_softmax(self, rng):
        logits = rng.standard_normal((4, 6))
        np.testing.assert_allclose(
            log_softmax(Tensor(logits)).data,
            np.log(softmax(Tensor(logits)).data),
            atol=1e-12,
        )


class TestCrossEntropy:
    def test_uniform_logits_give_log_num_classes(self):
        logits = Tensor(np.zeros((8, 10)))
        labels = np.arange(8) % 10
        assert cross_entropy(logits, labels).item() == pytest.approx(np.log(10))

    def test_perfect_prediction_has_low_loss(self):
        logits = np.full((4, 3), -50.0)
        labels = np.array([0, 1, 2, 0])
        logits[np.arange(4), labels] = 50.0
        assert cross_entropy(Tensor(logits), labels).item() == pytest.approx(0.0, abs=1e-8)

    def test_gradient_is_softmax_minus_onehot(self, rng):
        logits_data = rng.standard_normal((5, 4))
        labels = rng.integers(0, 4, 5)
        logits = Tensor(logits_data, requires_grad=True)
        cross_entropy(logits, labels).backward()
        probs = softmax(Tensor(logits_data)).data
        expected = (probs - one_hot(labels, 4)) / 5
        np.testing.assert_allclose(logits.grad, expected, atol=1e-10)

    def test_label_smoothing_increases_loss_of_perfect_prediction(self):
        logits = np.full((4, 3), -50.0)
        labels = np.array([0, 1, 2, 0])
        logits[np.arange(4), labels] = 50.0
        plain = cross_entropy(Tensor(logits), labels).item()
        smoothed = cross_entropy(Tensor(logits), labels, label_smoothing=0.1).item()
        assert smoothed > plain

    def test_nll_loss_consistent_with_cross_entropy(self, rng):
        logits = rng.standard_normal((6, 5))
        labels = rng.integers(0, 5, 6)
        via_ce = cross_entropy(Tensor(logits), labels).item()
        via_nll = nll_loss(log_softmax(Tensor(logits)), labels).item()
        assert via_ce == pytest.approx(via_nll)


class TestMSE:
    def test_zero_for_identical(self, rng):
        x = rng.standard_normal((3, 3))
        assert mse_loss(Tensor(x), x).item() == 0.0

    def test_value_and_gradient(self):
        pred = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        loss = mse_loss(pred, np.array([0.0, 0.0]))
        assert loss.item() == pytest.approx(2.5)
        loss.backward()
        np.testing.assert_allclose(pred.grad, [1.0, 2.0])


class TestBatchNorm:
    def test_training_normalizes_batch(self, rng):
        x = rng.standard_normal((8, 4, 5, 5)) * 3 + 7
        gamma, beta = Tensor(np.ones(4)), Tensor(np.zeros(4))
        running_mean, running_var = np.zeros(4), np.ones(4)
        out = batch_norm(Tensor(x), gamma, beta, running_mean, running_var, training=True)
        np.testing.assert_allclose(out.data.mean(axis=(0, 2, 3)), np.zeros(4), atol=1e-7)
        np.testing.assert_allclose(out.data.std(axis=(0, 2, 3)), np.ones(4), atol=1e-3)

    def test_running_stats_updated(self, rng):
        x = rng.standard_normal((8, 2, 4, 4)) + 5
        running_mean, running_var = np.zeros(2), np.ones(2)
        batch_norm(Tensor(x), Tensor(np.ones(2)), Tensor(np.zeros(2)),
                   running_mean, running_var, training=True, momentum=0.5)
        assert np.all(running_mean > 1.0)

    def test_eval_uses_running_stats(self, rng):
        x = rng.standard_normal((4, 2, 3, 3))
        running_mean, running_var = np.full(2, 10.0), np.full(2, 4.0)
        out = batch_norm(Tensor(x), Tensor(np.ones(2)), Tensor(np.zeros(2)),
                         running_mean, running_var, training=False)
        np.testing.assert_allclose(out.data, (x - 10.0) / np.sqrt(4.0 + 1e-5), atol=1e-10)

    def test_2d_input(self, rng):
        x = rng.standard_normal((10, 6))
        out = batch_norm(Tensor(x), Tensor(np.ones(6)), Tensor(np.zeros(6)),
                         np.zeros(6), np.ones(6), training=True)
        np.testing.assert_allclose(out.data.mean(axis=0), np.zeros(6), atol=1e-8)

    def test_invalid_rank_rejected(self):
        with pytest.raises(ValueError):
            batch_norm(Tensor(np.zeros((2, 3, 4))), Tensor(np.ones(3)), Tensor(np.zeros(3)),
                       np.zeros(3), np.ones(3), training=True)

    def test_gradcheck(self, rng, numgrad):
        x_data = rng.standard_normal((3, 2, 3, 3))
        gamma_data = rng.standard_normal(2)
        beta_data = rng.standard_normal(2)

        def loss():
            out = batch_norm(Tensor(x_data), Tensor(gamma_data), Tensor(beta_data),
                             np.zeros(2), np.ones(2), training=True)
            return float((out * out).sum().item())

        x = Tensor(x_data, requires_grad=True)
        gamma = Tensor(gamma_data, requires_grad=True)
        beta = Tensor(beta_data, requires_grad=True)
        out = batch_norm(x, gamma, beta, np.zeros(2), np.ones(2), training=True)
        (out * out).sum().backward()
        np.testing.assert_allclose(x.grad, numgrad(loss, x_data), atol=1e-5)
        np.testing.assert_allclose(gamma.grad, numgrad(loss, gamma_data), atol=1e-5)
        np.testing.assert_allclose(beta.grad, numgrad(loss, beta_data), atol=1e-5)


class TestDropout:
    def test_identity_in_eval_mode(self, rng):
        x = rng.standard_normal((5, 5))
        out = dropout(Tensor(x), 0.5, training=False)
        np.testing.assert_array_equal(out.data, x)

    def test_identity_with_zero_probability(self, rng):
        x = rng.standard_normal((5, 5))
        np.testing.assert_array_equal(dropout(Tensor(x), 0.0, training=True).data, x)

    def test_scaling_preserves_expectation(self):
        x = Tensor(np.ones((200, 200)))
        out = dropout(x, 0.3, training=True, rng=np.random.default_rng(0))
        assert out.data.mean() == pytest.approx(1.0, rel=0.02)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            dropout(Tensor(np.ones(3)), 1.5, training=True)


class TestAccuracyAndOneHot:
    def test_one_hot_shape_and_values(self):
        encoded = one_hot(np.array([0, 2]), 3)
        np.testing.assert_array_equal(encoded, [[1, 0, 0], [0, 0, 1]])

    def test_top1_accuracy(self):
        logits = np.array([[0.9, 0.1], [0.2, 0.8], [0.6, 0.4]])
        assert accuracy(logits, np.array([0, 1, 1])) == pytest.approx(2 / 3)

    def test_top5_accuracy(self, rng):
        logits = rng.standard_normal((10, 20))
        labels = np.argsort(-logits, axis=1)[:, 3]  # true label always ranked 4th
        assert accuracy(logits, labels, topk=5) == 1.0
        assert accuracy(logits, labels, topk=1) == 0.0

    def test_accepts_tensor_input(self):
        logits = Tensor(np.array([[1.0, 0.0]]))
        assert accuracy(logits, np.array([0])) == 1.0


class TestCombiningOps:
    def test_concatenate_values_and_gradients(self, rng):
        a = Tensor(rng.standard_normal((2, 3)), requires_grad=True)
        b = Tensor(rng.standard_normal((4, 3)), requires_grad=True)
        out = concatenate([a, b], axis=0)
        assert out.shape == (6, 3)
        out.sum().backward()
        np.testing.assert_array_equal(a.grad, np.ones((2, 3)))
        np.testing.assert_array_equal(b.grad, np.ones((4, 3)))

    def test_stack_values_and_gradients(self, rng):
        a = Tensor(rng.standard_normal((3,)), requires_grad=True)
        b = Tensor(rng.standard_normal((3,)), requires_grad=True)
        out = stack([a, b], axis=0)
        assert out.shape == (2, 3)
        (out * np.array([[1.0], [2.0]])).sum().backward()
        np.testing.assert_array_equal(a.grad, np.ones(3))
        np.testing.assert_array_equal(b.grad, np.full(3, 2.0))
