"""Tests for the autograd Tensor: ops, broadcasting, and gradient correctness."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.tensor import Tensor, is_grad_enabled, no_grad, unbroadcast


class TestTensorBasics:
    def test_data_is_float64(self):
        assert Tensor([1, 2, 3]).dtype == np.float64

    def test_shape_properties(self):
        t = Tensor(np.zeros((2, 3, 4)))
        assert t.shape == (2, 3, 4)
        assert t.ndim == 3
        assert t.size == 24
        assert len(t) == 2

    def test_item_on_scalar(self):
        assert Tensor(3.5).item() == 3.5

    def test_detach_breaks_graph(self):
        x = Tensor([1.0], requires_grad=True)
        y = (x * 2).detach()
        assert not y.requires_grad

    def test_requires_grad_not_propagated_from_constants(self):
        x = Tensor([1.0])
        y = x * 2
        assert not y.requires_grad

    def test_requires_grad_propagates(self):
        x = Tensor([1.0], requires_grad=True)
        assert (x * 2).requires_grad

    def test_zero_grad(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2).sum().backward()
        assert x.grad is not None
        x.zero_grad()
        assert x.grad is None


class TestNoGrad:
    def test_disables_graph_construction(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            y = x * 3
        assert not y.requires_grad

    def test_restores_state(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_new_tensors_inside_no_grad(self):
        with no_grad():
            x = Tensor([1.0], requires_grad=True)
        assert not x.requires_grad


class TestBackwardMechanics:
    def test_backward_on_non_scalar_requires_grad_argument(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 2).backward()

    def test_backward_on_non_grad_tensor_raises(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_gradient_accumulates_over_multiple_backward(self):
        x = Tensor([2.0], requires_grad=True)
        (x * 3).sum().backward()
        (x * 3).sum().backward()
        np.testing.assert_array_equal(x.grad, [6.0])

    def test_diamond_graph_accumulates_correctly(self):
        # y = x*2 used twice: d/dx (x*2 + x*2*x) evaluated at x=3 -> 2 + 4x = 14
        x = Tensor([3.0], requires_grad=True)
        y = x * 2
        z = (y + y * x).sum()
        z.backward()
        np.testing.assert_allclose(x.grad, [14.0])

    def test_explicit_upstream_gradient(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        (x * 2).backward(np.array([1.0, 10.0]))
        np.testing.assert_array_equal(x.grad, [2.0, 20.0])


class TestArithmeticGradients:
    def test_add(self, numgrad):
        data = np.random.default_rng(0).standard_normal((3, 4))
        x = Tensor(data, requires_grad=True)
        (x + 2.5).sum().backward()
        np.testing.assert_allclose(x.grad, np.ones_like(data))

    def test_mul_gradient(self, numgrad):
        rng = np.random.default_rng(1)
        a_data, b_data = rng.standard_normal((2, 3)), rng.standard_normal((2, 3))
        a, b = Tensor(a_data, requires_grad=True), Tensor(b_data, requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, b_data)
        np.testing.assert_allclose(b.grad, a_data)

    def test_div_gradient(self, numgrad):
        rng = np.random.default_rng(2)
        a_data = rng.standard_normal((4,))
        b_data = rng.uniform(1, 2, (4,))
        a, b = Tensor(a_data, requires_grad=True), Tensor(b_data, requires_grad=True)
        (a / b).sum().backward()
        np.testing.assert_allclose(a.grad, 1 / b_data)
        np.testing.assert_allclose(b.grad, -a_data / b_data**2)

    def test_pow_gradient(self):
        x = Tensor([2.0, 3.0], requires_grad=True)
        (x**3).sum().backward()
        np.testing.assert_allclose(x.grad, 3 * np.array([2.0, 3.0]) ** 2)

    def test_neg_and_sub(self):
        x = Tensor([1.0, -2.0], requires_grad=True)
        (5.0 - x).sum().backward()
        np.testing.assert_allclose(x.grad, [-1.0, -1.0])

    def test_matmul_gradient(self, numgrad):
        rng = np.random.default_rng(3)
        a_data = rng.standard_normal((3, 4))
        b_data = rng.standard_normal((4, 5))

        def loss():
            return float((Tensor(a_data) @ Tensor(b_data)).sum().item())

        a = Tensor(a_data, requires_grad=True)
        b = Tensor(b_data, requires_grad=True)
        (a @ b).sum().backward()
        np.testing.assert_allclose(a.grad, numgrad(loss, a_data), atol=1e-6)
        np.testing.assert_allclose(b.grad, numgrad(loss, b_data), atol=1e-6)

    def test_batched_matmul(self):
        rng = np.random.default_rng(4)
        a = Tensor(rng.standard_normal((2, 3, 4)), requires_grad=True)
        b = Tensor(rng.standard_normal((2, 4, 5)), requires_grad=True)
        out = a @ b
        assert out.shape == (2, 3, 5)
        out.sum().backward()
        assert a.grad.shape == (2, 3, 4)
        assert b.grad.shape == (2, 4, 5)


class TestBroadcasting:
    def test_unbroadcast_sums_added_dims(self):
        grad = np.ones((5, 3, 4))
        np.testing.assert_array_equal(unbroadcast(grad, (3, 4)), np.full((3, 4), 5.0))

    def test_unbroadcast_sums_size_one_dims(self):
        grad = np.ones((3, 4))
        np.testing.assert_array_equal(unbroadcast(grad, (3, 1)), np.full((3, 1), 4.0))

    def test_broadcast_add_gradients(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        b = Tensor(np.ones((3,)), requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_array_equal(a.grad, np.ones((2, 3)))
        np.testing.assert_array_equal(b.grad, np.full((3,), 2.0))

    def test_broadcast_mul_gradients(self):
        a = Tensor(np.full((2, 3), 2.0), requires_grad=True)
        b = Tensor(np.full((1, 3), 3.0), requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_array_equal(a.grad, np.full((2, 3), 3.0))
        np.testing.assert_array_equal(b.grad, np.full((1, 3), 4.0))


class TestReductions:
    def test_sum_all(self):
        x = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        x.sum().backward()
        np.testing.assert_array_equal(x.grad, np.ones((2, 3)))

    def test_sum_axis_keepdims(self):
        x = Tensor(np.ones((2, 3)), requires_grad=True)
        out = x.sum(axis=1, keepdims=True)
        assert out.shape == (2, 1)
        out.sum().backward()
        np.testing.assert_array_equal(x.grad, np.ones((2, 3)))

    def test_mean_gradient(self):
        x = Tensor(np.ones((4, 5)), requires_grad=True)
        x.mean().backward()
        np.testing.assert_allclose(x.grad, np.full((4, 5), 1 / 20))

    def test_mean_axis_tuple(self):
        x = Tensor(np.ones((2, 3, 4, 5)), requires_grad=True)
        out = x.mean(axis=(2, 3))
        assert out.shape == (2, 3)
        out.sum().backward()
        np.testing.assert_allclose(x.grad, np.full((2, 3, 4, 5), 1 / 20))

    def test_var_matches_numpy(self):
        data = np.random.default_rng(0).standard_normal((3, 4))
        assert Tensor(data).var().item() == pytest.approx(data.var())

    def test_max_gradient_flows_to_argmax(self):
        x = Tensor(np.array([[1.0, 5.0, 2.0]]), requires_grad=True)
        x.max().backward()
        np.testing.assert_array_equal(x.grad, [[0.0, 1.0, 0.0]])

    def test_max_axis(self, numgrad):
        rng = np.random.default_rng(5)
        data = rng.standard_normal((3, 4))
        x = Tensor(data, requires_grad=True)
        x.max(axis=1).sum().backward()

        def loss():
            return float(Tensor(data).max(axis=1).sum().item())

        np.testing.assert_allclose(x.grad, numgrad(loss, data), atol=1e-6)


class TestShapeOps:
    def test_reshape_roundtrip_gradient(self):
        x = Tensor(np.arange(12.0), requires_grad=True)
        x.reshape(3, 4).sum().backward()
        np.testing.assert_array_equal(x.grad, np.ones(12))

    def test_flatten(self):
        x = Tensor(np.zeros((2, 3, 4)))
        assert x.flatten().shape == (2, 12)

    def test_transpose_gradient(self):
        x = Tensor(np.random.default_rng(0).standard_normal((2, 3, 4)), requires_grad=True)
        y = x.transpose(2, 0, 1)
        assert y.shape == (4, 2, 3)
        y.sum().backward()
        assert x.grad.shape == (2, 3, 4)

    def test_default_transpose_reverses(self):
        assert Tensor(np.zeros((2, 3, 4))).transpose().shape == (4, 3, 2)

    def test_pad_and_gradient(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        padded = x.pad([(1, 1), (0, 2)])
        assert padded.shape == (4, 4)
        padded.sum().backward()
        np.testing.assert_array_equal(x.grad, np.ones((2, 2)))

    def test_getitem_gradient(self):
        x = Tensor(np.arange(10.0), requires_grad=True)
        x[2:5].sum().backward()
        expected = np.zeros(10)
        expected[2:5] = 1
        np.testing.assert_array_equal(x.grad, expected)


class TestNonlinearities:
    @pytest.mark.parametrize("op,derivative", [
        ("exp", lambda x: np.exp(x)),
        ("tanh", lambda x: 1 - np.tanh(x) ** 2),
        ("sigmoid", lambda x: (1 / (1 + np.exp(-x))) * (1 - 1 / (1 + np.exp(-x)))),
    ])
    def test_elementwise_derivatives(self, op, derivative):
        data = np.linspace(-2, 2, 11)
        x = Tensor(data, requires_grad=True)
        getattr(x, op)().sum().backward()
        np.testing.assert_allclose(x.grad, derivative(data), atol=1e-10)

    def test_relu_gradient_mask(self):
        x = Tensor(np.array([-1.0, 0.5, 2.0]), requires_grad=True)
        x.relu().sum().backward()
        np.testing.assert_array_equal(x.grad, [0.0, 1.0, 1.0])

    def test_log_gradient(self):
        data = np.array([0.5, 1.0, 4.0])
        x = Tensor(data, requires_grad=True)
        x.log().sum().backward()
        np.testing.assert_allclose(x.grad, 1 / data)

    def test_sqrt_gradient(self):
        data = np.array([1.0, 4.0, 9.0])
        x = Tensor(data, requires_grad=True)
        x.sqrt().sum().backward()
        np.testing.assert_allclose(x.grad, 0.5 / np.sqrt(data))

    def test_clip_gradient(self):
        x = Tensor(np.array([-2.0, 0.5, 3.0]), requires_grad=True)
        x.clip(-1.0, 1.0).sum().backward()
        np.testing.assert_array_equal(x.grad, [0.0, 1.0, 0.0])

    def test_abs_gradient(self):
        x = Tensor(np.array([-2.0, 3.0]), requires_grad=True)
        x.abs().sum().backward()
        np.testing.assert_array_equal(x.grad, [-1.0, 1.0])

    def test_apply_custom_function(self):
        x = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        doubled = x.apply(lambda a: a * 2, lambda g, a, o: g * 2, name="double")
        doubled.sum().backward()
        np.testing.assert_array_equal(doubled.data, [2.0, 4.0])
        np.testing.assert_array_equal(x.grad, [2.0, 2.0])


class TestHypothesisGradients:
    @given(data=hnp.arrays(np.float64, shape=(4, 3),
                           elements=st.floats(-5, 5, allow_nan=False)))
    @settings(max_examples=50, deadline=None)
    def test_sum_of_products_gradient(self, data):
        """d/dx sum(x * x) == 2x for arbitrary x."""
        x = Tensor(data, requires_grad=True)
        (x * x).sum().backward()
        np.testing.assert_allclose(x.grad, 2 * data, atol=1e-9)

    @given(data=hnp.arrays(np.float64, shape=(3, 3),
                           elements=st.floats(-3, 3, allow_nan=False)))
    @settings(max_examples=50, deadline=None)
    def test_linearity_of_gradient(self, data):
        """Gradient of a*f + b*f is (a+b) * grad(f)."""
        x1 = Tensor(data, requires_grad=True)
        (x1.relu() * 2.0 + x1.relu() * 3.0).sum().backward()
        x2 = Tensor(data, requires_grad=True)
        (x2.relu() * 5.0).sum().backward()
        np.testing.assert_allclose(x1.grad, x2.grad, atol=1e-9)


def test_no_grad_is_thread_local():
    """Concurrent no_grad blocks must not clobber each other's grad mode.

    The serving engine runs eval forwards under no_grad on its batcher
    thread while other threads may be training; a process-global flag
    would let one thread's restore disable gradients everywhere.
    """
    import threading
    import time

    from repro.tensor import Tensor, no_grad
    from repro.tensor.tensor import is_grad_enabled

    stop = threading.Event()
    misreads = []

    def _eval_loop():
        while not stop.is_set():
            with no_grad():
                if is_grad_enabled():
                    misreads.append("enabled inside no_grad")
                time.sleep(0.0001)

    worker = threading.Thread(target=_eval_loop, daemon=True)
    worker.start()
    try:
        deadline = time.time() + 0.2
        while time.time() < deadline:
            assert is_grad_enabled(), "worker's no_grad leaked to this thread"
            x = Tensor(np.ones(2), requires_grad=True)
            assert (x * 2).requires_grad
    finally:
        stop.set()
        worker.join(timeout=5.0)
    assert not misreads
