"""Tests for the per-process dataset-construction cache used by sweeps."""

import numpy as np
import pytest

from repro.api import (
    ExperimentConfig,
    build_experiment,
    clear_dataset_cache,
    dataset_cache_info,
    run_experiment,
)


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_dataset_cache()
    yield
    clear_dataset_cache()


def blob_config(**overrides) -> ExperimentConfig:
    base = dict(dataset="blobs", model="mlp", policy=None, epochs=1,
                train_size=48, test_size=24, batch_size=16, num_classes=3,
                model_kwargs={"hidden": [4]})
    base.update(overrides)
    return ExperimentConfig(**base)


def test_same_dataset_config_hits_cache():
    build_experiment(blob_config(policy="posit(8,1)"))
    build_experiment(blob_config(policy="posit(16,1)"))  # same data, new policy
    info = dataset_cache_info()
    assert info["misses"] == 1
    assert info["hits"] == 1


def test_different_data_seed_misses():
    build_experiment(blob_config())
    build_experiment(blob_config(data_seed=99))
    assert dataset_cache_info()["misses"] == 2


def test_different_data_kwargs_miss():
    build_experiment(blob_config(dataset="cifar_like", model="tiny_resnet",
                                 model_kwargs={}, train_size=16, test_size=8))
    build_experiment(blob_config(dataset="cifar_like", model="tiny_resnet",
                                 model_kwargs={}, train_size=16, test_size=8,
                                 data_kwargs={"noise_std": 0.9}))
    assert dataset_cache_info()["misses"] == 2


def test_cached_run_is_deterministic():
    """A warm cache must not change training results (read-only sharing)."""
    config = blob_config(policy="posit(8,1)")
    cold = run_experiment(config)
    assert dataset_cache_info()["misses"] == 1
    warm = run_experiment(config)
    assert dataset_cache_info()["hits"] >= 1
    assert warm.final_val_accuracy == cold.final_val_accuracy
    assert warm.final_train_loss == cold.final_train_loss


def test_cache_is_bounded():
    from repro.api import _DATASET_CACHE_LIMIT

    for seed in range(_DATASET_CACHE_LIMIT + 3):
        build_experiment(blob_config(data_seed=seed))
    assert dataset_cache_info()["size"] <= _DATASET_CACHE_LIMIT


def test_clear_resets_counters():
    build_experiment(blob_config())
    clear_dataset_cache()
    assert dataset_cache_info() == {"size": 0, "hits": 0, "misses": 0}
