"""Tests for Experiment.describe() / format_specs() self-description."""

from repro.api import ExperimentConfig, build_experiment


def tiny_config(**overrides):
    defaults = dict(dataset="blobs", model="mlp", epochs=1, train_size=48,
                    test_size=16, batch_size=16, num_classes=3,
                    model_kwargs={"hidden": [8]})
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


class TestFormatSpecs:
    def test_preset_policy_resolves_to_spec_strings(self):
        experiment = build_experiment(tiny_config(policy="cifar_paper"))
        assert experiment.format_specs() == [
            "posit(16,1)", "posit(16,2)", "posit(8,1)", "posit(8,2)"]

    def test_bare_format_spec(self):
        experiment = build_experiment(tiny_config(policy="fixed(16,13)"))
        assert experiment.format_specs() == ["fixed(16,13)"]

    def test_fp32_baseline(self):
        experiment = build_experiment(tiny_config(policy="fp32"))
        assert experiment.format_specs() == ["fp32"]


class TestDescribe:
    def test_describe_is_self_describing(self):
        experiment = build_experiment(tiny_config(policy="fp8_mixed"))
        description = experiment.describe()
        assert description["config"]["policy"] == "fp8_mixed"
        # The resolved spec strings are present without reconstructing the
        # policy: the point of the field is that reports/logs carry them.
        assert "fp8_e4m3" in description["formats"]
        assert description["policy"]["conv"]["weight"] == "fp8_e4m3"

    def test_describe_fp32(self):
        description = build_experiment(tiny_config(policy=None)).describe()
        assert description["formats"] == ["fp32"]
        assert description["policy"] is None
