"""The high-level experiment API: declarative config -> wired experiment."""

import numpy as np
import pytest

from repro.api import (
    POLICY_PRESETS,
    Experiment,
    ExperimentConfig,
    build_experiment,
    build_policy,
    run_experiment,
)
from repro.core import PositTrainer, QuantizationPolicy
from repro.formats import FixedPointFormat
from repro.models import MLP
from repro.optim import SGD
from repro.posit import FP16, PositConfig

TINY = dict(dataset="spirals", model="mlp", num_classes=3,
            train_size=90, test_size=30, batch_size=32, epochs=1,
            lr=0.1, warmup_epochs=0)


class TestBuildPolicy:
    def test_none_and_fp32_mean_baseline(self):
        assert build_policy(None) is None
        assert build_policy("fp32") is None
        assert build_policy("none") is None
        # Named FP32 aliases and the role-level synonyms resolve the same
        # way, so "float32" cannot silently become a fake-quantizing policy.
        assert build_policy("float32") is None
        assert build_policy("full") is None

    def test_policy_object_passes_through(self):
        policy = QuantizationPolicy.cifar_paper()
        assert build_policy(policy) is policy

    def test_presets_resolve(self):
        for name in POLICY_PRESETS:
            assert isinstance(build_policy(name), QuantizationPolicy)

    def test_preset_equals_factory(self):
        assert build_policy("cifar_paper").describe() == \
            QuantizationPolicy.cifar_paper().describe()

    def test_uniform_preset(self):
        policy = build_policy("uniform(8)")
        assert policy.conv_formats.weight == PositConfig(8, 1)
        assert policy.conv_formats.error == PositConfig(8, 2)
        explicit = build_policy("uniform(8,0,1)")
        assert explicit.conv_formats.weight == PositConfig(8, 0)
        assert explicit.conv_formats.error == PositConfig(8, 1)

    def test_bare_format_spec_means_uniform_format(self):
        policy = build_policy("fixed(16,13)")
        assert policy.conv_formats.weight == FixedPointFormat(2, 13)
        assert policy.bn_formats.weight == FixedPointFormat(2, 13)
        policy = build_policy("fp16")
        assert policy.linear_formats.error == FP16

    def test_dict_resolves_via_from_dict(self):
        policy = build_policy(QuantizationPolicy.imagenet_paper().to_dict())
        assert policy.conv_formats.weight == PositConfig(16, 1)

    def test_unknown_spec_raises_with_candidates(self):
        with pytest.raises(ValueError, match="cifar_paper"):
            build_policy("not_a_policy")

    def test_wrong_type_raises(self):
        with pytest.raises(TypeError):
            build_policy(3.5)


class TestExperimentConfig:
    def test_round_trips_through_dict(self):
        config = ExperimentConfig(**TINY, policy="cifar_paper")
        assert ExperimentConfig.from_dict(config.to_dict()) == config

    def test_policy_object_serialized_to_dict(self):
        config = ExperimentConfig(**TINY, policy=QuantizationPolicy.imagenet_paper())
        data = config.to_dict()
        assert isinstance(data["policy"], dict)
        rebuilt = ExperimentConfig.from_dict(data)
        policy = build_policy(rebuilt.policy)
        assert policy.conv_formats.weight == PositConfig(16, 1)

    def test_with_overrides(self):
        config = ExperimentConfig(**TINY)
        assert config.with_overrides(epochs=7).epochs == 7
        assert config.epochs == TINY["epochs"]


class TestBuildExperiment:
    def test_wires_all_pieces(self):
        experiment = build_experiment(ExperimentConfig(**TINY, policy="imagenet_paper"))
        assert isinstance(experiment, Experiment)
        assert isinstance(experiment.trainer, PositTrainer)
        assert isinstance(experiment.model, MLP)
        assert experiment.policy is not None
        assert experiment.trainer.contexts  # policy attached to the model

    def test_accepts_plain_dict_config(self):
        experiment = build_experiment({**TINY, "policy": "fp32"})
        assert experiment.policy is None

    def test_run_returns_history(self):
        history = build_experiment(ExperimentConfig(**TINY, policy="fp32")).run()
        assert len(history) == TINY["epochs"]
        assert np.isfinite(history.final_train_loss)

    def test_run_experiment_shortcut(self):
        history = run_experiment({**TINY, "policy": "uniform(8)"})
        assert len(history) == TINY["epochs"]

    def test_image_dataset_and_resnet(self):
        config = ExperimentConfig(dataset="cifar_like", model="tiny_resnet",
                                  policy="cifar_paper", epochs=1, batch_size=16,
                                  train_size=32, test_size=16, warmup_epochs=0,
                                  data_kwargs={"noise_std": 0.5})
        history = build_experiment(config).run()
        assert len(history) == 1

    def test_num_classes_reaches_dataset_and_model(self):
        config = ExperimentConfig(dataset="cifar_like", model="tiny_resnet",
                                  policy=None, epochs=1, batch_size=16,
                                  train_size=32, test_size=16, num_classes=4,
                                  warmup_epochs=0)
        experiment = build_experiment(config)
        labels = experiment.train_loader.labels
        assert labels.max() < 4  # dataset honoured num_classes
        assert experiment.model.num_classes == 4
        experiment.run()  # trains without label/output mismatch

    def test_split_sizes_exact_even_when_not_divisible_by_classes(self):
        # The toy builders emit floor(total/num_classes) per class; the
        # loaders must still honour the requested split so the validation
        # set cannot silently end up empty.
        config = ExperimentConfig(dataset="spirals", model="mlp", num_classes=10,
                                  policy=None, epochs=1, train_size=101, test_size=7,
                                  warmup_epochs=0)
        experiment = build_experiment(config)
        assert len(experiment.train_loader.labels) == 101
        assert len(experiment.val_loader.labels) == 7
        history = experiment.run()
        assert history.final_val_accuracy is not None

    def test_shuffle_seed_decouples_loader_from_model_seed(self):
        base = dict(TINY, policy=None)
        a = build_experiment(ExperimentConfig(**base, seed=7, shuffle_seed=0))
        b = build_experiment(ExperimentConfig(**base, seed=0))
        first_a = next(iter(a.train_loader))[0]
        first_b = next(iter(b.train_loader))[0]
        np.testing.assert_array_equal(first_a, first_b)

    def test_loss_scaling_builds_scaler(self):
        experiment = build_experiment(
            ExperimentConfig(**TINY, policy="fp16_mixed", loss_scaling=True))
        assert experiment.loss_scaler is not None
        assert experiment.trainer.loss_scaler is experiment.loss_scaler

    def test_scheduler_wiring(self):
        for name in ("step", "multistep", "cosine"):
            experiment = build_experiment(
                ExperimentConfig(**TINY, policy=None, scheduler=name))
            assert experiment.scheduler is not None
            assert experiment.trainer.scheduler is experiment.scheduler

    def test_unknown_dataset_model_scheduler_raise(self):
        with pytest.raises(ValueError, match="unknown dataset"):
            build_experiment(ExperimentConfig(dataset="mnist"))
        with pytest.raises(ValueError, match="unknown model"):
            build_experiment(ExperimentConfig(**{**TINY, "model": "transformer"}))
        with pytest.raises(ValueError, match="unknown scheduler"):
            build_experiment(ExperimentConfig(**TINY, scheduler="exponential"))

    def test_epoch_callbacks_forwarded(self):
        seen = []
        build_experiment(ExperimentConfig(**TINY, policy=None),
                         epoch_callbacks=[lambda trainer, epoch, record: seen.append(epoch)]
                         ).run()
        assert seen == list(range(TINY["epochs"]))


class TestTrainerSpecPolicies:
    """PositTrainer resolves string/dict policies through build_policy."""

    def test_trainer_accepts_preset_name(self):
        model = MLP(2, hidden=(8,), num_classes=3, rng=np.random.default_rng(0))
        trainer = PositTrainer(model, SGD(model.parameters(), lr=0.1),
                               policy="imagenet_paper")
        assert isinstance(trainer.policy, QuantizationPolicy)
        assert trainer.contexts

    def test_trainer_accepts_policy_dict(self):
        model = MLP(2, hidden=(8,), num_classes=3, rng=np.random.default_rng(0))
        trainer = PositTrainer(model, SGD(model.parameters(), lr=0.1),
                               policy=QuantizationPolicy.cifar_paper().to_dict())
        assert trainer.policy.conv_formats.weight == PositConfig(8, 1)
