"""Repository hygiene: no bytecode may be tracked or trackable.

``src/repro/__pycache__`` and friends regenerate on every
``PYTHONPATH=src`` run; if ``.gitignore`` ever loses its bytecode
patterns (or someone force-adds a ``.pyc``) the working tree fills with
noise and review diffs grow garbage.  These tests pin both properties at
the repo level so the regression is caught by the tier-1 suite instead of
by an annoyed reviewer.
"""

import os
import shutil
import subprocess

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _git(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(["git", "-C", REPO_ROOT, *args],
                          capture_output=True, text=True, timeout=60)


def _require_git_checkout() -> None:
    if shutil.which("git") is None:
        pytest.skip("git is not installed")
    probe = _git("rev-parse", "--is-inside-work-tree")
    if probe.returncode != 0 or probe.stdout.strip() != "true":
        pytest.skip("not running from a git checkout")


def test_no_bytecode_is_tracked():
    _require_git_checkout()
    listing = _git("ls-files")
    assert listing.returncode == 0, listing.stderr
    offenders = [line for line in listing.stdout.splitlines()
                 if "__pycache__" in line or line.endswith((".pyc", ".pyo"))]
    assert not offenders, f"tracked bytecode files: {offenders}"


def test_gitignore_covers_bytecode_everywhere():
    """Every bytecode path git could see must be ignored, at any depth."""
    _require_git_checkout()
    probes = [
        "src/repro/__pycache__/api.cpython-311.pyc",
        "src/repro/formats/__pycache__/base.cpython-311.pyc",
        "tests/__pycache__/conftest.cpython-311.pyc",
        "benchmarks/__pycache__/anything.pyc",
        "examples/stray.pyc",
        "deep/nested/new/package/__pycache__/mod.pyc",
    ]
    # `git check-ignore` exits 0 when *any* argument is ignored, so probe
    # one path at a time and collect the uncovered ones.
    uncovered = [probe for probe in probes
                 if _git("check-ignore", "-q", probe).returncode != 0]
    assert not uncovered, f"paths not covered by .gitignore: {uncovered}"
