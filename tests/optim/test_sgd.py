"""Tests for SGD with momentum and its quantization transform hooks."""

import numpy as np
import pytest

from repro.nn import Linear, Parameter
from repro.optim import SGD
from repro.posit import PositConfig, quantize
from repro.tensor import Tensor


def make_param(values):
    param = Parameter(np.array(values, dtype=np.float64))
    return param


class TestPlainSGD:
    def test_single_step(self):
        param = make_param([1.0, 2.0])
        param.grad = np.array([0.5, -0.5])
        SGD([param], lr=0.1).step()
        np.testing.assert_allclose(param.data, [0.95, 2.05])

    def test_skips_parameters_without_gradient(self):
        param = make_param([1.0])
        SGD([param], lr=0.1).step()
        np.testing.assert_array_equal(param.data, [1.0])

    def test_weight_decay(self):
        param = make_param([1.0])
        param.grad = np.array([0.0])
        SGD([param], lr=0.1, weight_decay=0.5).step()
        np.testing.assert_allclose(param.data, [1.0 - 0.1 * 0.5])

    def test_momentum_accumulates(self):
        param = make_param([0.0])
        optimizer = SGD([param], lr=1.0, momentum=0.9)
        for _ in range(2):
            param.grad = np.array([1.0])
            optimizer.step()
        # Step 1: v=1, w=-1.  Step 2: v=1.9, w=-2.9.
        np.testing.assert_allclose(param.data, [-2.9])

    def test_nesterov_differs_from_plain_momentum(self):
        plain = make_param([0.0])
        nesterov = make_param([0.0])
        opt_plain = SGD([plain], lr=1.0, momentum=0.9)
        opt_nesterov = SGD([nesterov], lr=1.0, momentum=0.9, nesterov=True)
        for _ in range(2):
            plain.grad = np.array([1.0])
            nesterov.grad = np.array([1.0])
            opt_plain.step()
            opt_nesterov.step()
        assert plain.data[0] != nesterov.data[0]

    def test_validation(self):
        param = make_param([1.0])
        with pytest.raises(ValueError):
            SGD([], lr=0.1)
        with pytest.raises(ValueError):
            SGD([param], lr=-1.0)
        with pytest.raises(ValueError):
            SGD([param], lr=0.1, momentum=-0.5)
        with pytest.raises(ValueError):
            SGD([param], lr=0.1, nesterov=True)

    def test_zero_grad(self):
        param = make_param([1.0])
        param.grad = np.array([1.0])
        optimizer = SGD([param], lr=0.1)
        optimizer.zero_grad()
        assert param.grad is None

    def test_state_dict_roundtrip(self):
        param = make_param([0.0])
        optimizer = SGD([param], lr=0.5, momentum=0.9)
        param.grad = np.array([1.0])
        optimizer.step()
        state = optimizer.state_dict()
        fresh = SGD([param], lr=0.5, momentum=0.9)
        fresh.load_state_dict(state)
        param.grad = np.array([1.0])
        fresh.step()
        # Momentum buffer was restored, so the second step uses v = 0.9*1 + 1.
        np.testing.assert_allclose(param.data, [-0.5 - 0.5 * 1.9])

    def test_convergence_on_quadratic(self):
        """SGD minimizes a simple quadratic, a functional sanity check."""
        param = make_param([5.0])
        optimizer = SGD([param], lr=0.1, momentum=0.9)
        for _ in range(200):
            x = Tensor(param.data)
            param.grad = 2 * param.data  # gradient of x^2
            optimizer.step()
        assert abs(param.data[0]) < 1e-3


class TestTransformHooks:
    """The Fig. 3b/3c hooks: quantize ΔW before use and W after update."""

    def test_grad_transform_applied(self):
        param = make_param([1.0])
        param.grad = np.array([0.3])
        optimizer = SGD([param], lr=1.0)
        optimizer.grad_transform = lambda grad, p: np.round(grad)
        optimizer.step()
        np.testing.assert_allclose(param.data, [1.0])  # round(0.3) == 0

    def test_param_transform_applied_after_update(self):
        config = PositConfig(8, 1)
        param = make_param([1.0])
        param.grad = np.array([0.03])
        optimizer = SGD([param], lr=1.0)
        optimizer.param_transform = lambda data, p: np.asarray(quantize(data, config))
        optimizer.step()
        assert param.data[0] == float(quantize(1.0 - 0.03, config))

    def test_transforms_receive_parameter_identity(self, rng):
        layer = Linear(3, 2, rng=rng)
        seen = []
        optimizer = SGD(layer.parameters(), lr=0.1)
        optimizer.grad_transform = lambda grad, p: (seen.append(id(p)), grad)[1]
        out = layer(Tensor(rng.standard_normal((4, 3))))
        out.sum().backward()
        optimizer.step()
        assert set(seen) == {id(p) for p in layer.parameters()}
