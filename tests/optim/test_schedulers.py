"""Tests for learning-rate schedulers (the paper's step-decay recipes)."""

import numpy as np
import pytest

from repro.nn import Parameter
from repro.optim import SGD, CosineAnnealingLR, LinearWarmupLR, MultiStepLR, StepLR


def make_optimizer(lr=0.1):
    param = Parameter(np.zeros(1))
    return SGD([param], lr=lr)


class TestMultiStepLR:
    def test_cifar_recipe_from_table3(self):
        """Initial lr 0.1, divided by 10 at epochs 60, 150, 250 (Table III)."""
        optimizer = make_optimizer(0.1)
        scheduler = MultiStepLR(optimizer, milestones=(60, 150, 250), gamma=0.1)
        assert scheduler.get_lr(0) == pytest.approx(0.1)
        assert scheduler.get_lr(59) == pytest.approx(0.1)
        assert scheduler.get_lr(60) == pytest.approx(0.01)
        assert scheduler.get_lr(150) == pytest.approx(0.001)
        assert scheduler.get_lr(299) == pytest.approx(0.0001)

    def test_step_updates_optimizer(self):
        optimizer = make_optimizer(0.1)
        scheduler = MultiStepLR(optimizer, milestones=(2,))
        scheduler.step(5)
        assert optimizer.lr == pytest.approx(0.01)

    def test_unsorted_milestones_accepted(self):
        optimizer = make_optimizer(1.0)
        scheduler = MultiStepLR(optimizer, milestones=(30, 10, 20))
        assert scheduler.get_lr(25) == pytest.approx(0.01)


class TestStepLR:
    def test_imagenet_recipe_from_table3(self):
        """Initial lr 0.1 divided by 10 every 30 epochs (Table III)."""
        scheduler = StepLR(make_optimizer(0.1), step_size=30)
        assert scheduler.get_lr(0) == pytest.approx(0.1)
        assert scheduler.get_lr(29) == pytest.approx(0.1)
        assert scheduler.get_lr(30) == pytest.approx(0.01)
        assert scheduler.get_lr(60) == pytest.approx(0.001)

    def test_invalid_step_size(self):
        with pytest.raises(ValueError):
            StepLR(make_optimizer(), step_size=0)

    def test_implicit_epoch_advance(self):
        optimizer = make_optimizer(0.1)
        scheduler = StepLR(optimizer, step_size=1, gamma=0.5)
        scheduler.step()
        scheduler.step()
        assert optimizer.lr == pytest.approx(0.05)


class TestCosineAnnealingLR:
    def test_endpoints(self):
        scheduler = CosineAnnealingLR(make_optimizer(0.4), t_max=100, eta_min=0.0)
        assert scheduler.get_lr(0) == pytest.approx(0.4)
        assert scheduler.get_lr(100) == pytest.approx(0.0, abs=1e-12)
        assert scheduler.get_lr(50) == pytest.approx(0.2)

    def test_monotone_decreasing(self):
        scheduler = CosineAnnealingLR(make_optimizer(1.0), t_max=50)
        lrs = [scheduler.get_lr(e) for e in range(51)]
        assert all(a >= b for a, b in zip(lrs, lrs[1:]))

    def test_invalid_t_max(self):
        with pytest.raises(ValueError):
            CosineAnnealingLR(make_optimizer(), t_max=0)


class TestLinearWarmupLR:
    def test_ramps_up_linearly(self):
        scheduler = LinearWarmupLR(make_optimizer(0.5), warmup_epochs=5)
        assert scheduler.get_lr(0) == pytest.approx(0.1)
        assert scheduler.get_lr(4) == pytest.approx(0.5)
        assert scheduler.get_lr(10) == pytest.approx(0.5)

    def test_delegates_after_warmup(self):
        optimizer = make_optimizer(0.5)
        after = MultiStepLR(optimizer, milestones=(8,))
        scheduler = LinearWarmupLR(optimizer, warmup_epochs=4, after=after)
        assert scheduler.get_lr(2) < 0.5
        assert scheduler.get_lr(9) == pytest.approx(0.05)

    def test_negative_warmup_rejected(self):
        with pytest.raises(ValueError):
            LinearWarmupLR(make_optimizer(), warmup_epochs=-1)
