"""Tests for the synthetic datasets and data loaders."""

import numpy as np
import pytest

from repro.data import (
    ArrayDataLoader,
    SyntheticImageDataset,
    cifar_like,
    imagenet_like,
    make_blobs,
    make_spirals,
    normalize_images,
    train_loader,
)
from repro.data import loaders as data_loaders


class TestSyntheticImageDataset:
    def test_shapes_and_sizes(self):
        dataset = SyntheticImageDataset(num_classes=4, num_train=100, num_test=40,
                                        image_size=16, channels=3, seed=0)
        assert dataset.train_images.shape == (100, 3, 16, 16)
        assert dataset.test_images.shape == (40, 3, 16, 16)
        assert dataset.train_labels.shape == (100,)
        assert dataset.input_shape == (3, 16, 16)
        assert len(dataset) == 100

    def test_labels_in_range(self):
        dataset = SyntheticImageDataset(num_classes=5, num_train=200, num_test=50, seed=1)
        assert dataset.train_labels.min() >= 0
        assert dataset.train_labels.max() < 5

    def test_deterministic_given_seed(self):
        a = SyntheticImageDataset(num_train=50, num_test=10, seed=3)
        b = SyntheticImageDataset(num_train=50, num_test=10, seed=3)
        np.testing.assert_array_equal(a.train_images, b.train_images)
        np.testing.assert_array_equal(a.test_labels, b.test_labels)

    def test_different_seeds_differ(self):
        a = SyntheticImageDataset(num_train=50, num_test=10, seed=3)
        b = SyntheticImageDataset(num_train=50, num_test=10, seed=4)
        assert not np.array_equal(a.train_images, b.train_images)

    def test_noise_controls_difficulty(self):
        """A nearest-prototype classifier should do worse with more noise."""
        def prototype_accuracy(noise):
            dataset = SyntheticImageDataset(num_classes=10, num_train=400, num_test=200,
                                            image_size=16, noise_std=noise, seed=0,
                                            max_shift=0)
            prototypes = np.stack([
                dataset.train_images[dataset.train_labels == c].mean(axis=0)
                for c in range(10)
            ])
            flat_test = dataset.test_images.reshape(len(dataset.test_images), -1)
            flat_proto = prototypes.reshape(10, -1)
            predictions = np.argmax(flat_test @ flat_proto.T, axis=1)
            return float((predictions == dataset.test_labels).mean())

        assert prototype_accuracy(0.5) > prototype_accuracy(40.0)

    def test_class_structure_learnable(self):
        """With modest noise, same-class samples correlate more than cross-class."""
        dataset = SyntheticImageDataset(num_classes=3, num_train=300, num_test=30,
                                        image_size=16, noise_std=0.3, seed=0, max_shift=0)
        flat = dataset.train_images.reshape(len(dataset.train_images), -1)
        labels = dataset.train_labels
        same, cross = [], []
        for c in range(3):
            members = flat[labels == c][:20]
            others = flat[labels != c][:20]
            centroid = members.mean(axis=0)
            same.append(np.mean(members @ centroid))
            cross.append(np.mean(others @ centroid))
        assert np.mean(same) > np.mean(cross)

    def test_validation(self):
        with pytest.raises(ValueError):
            SyntheticImageDataset(num_classes=1)
        with pytest.raises(ValueError):
            SyntheticImageDataset(prototype_smoothness=64, image_size=32)

    def test_describe(self):
        description = cifar_like(num_train=10, num_test=5).describe()
        assert description["num_classes"] == 10
        assert description["input_shape"] == (3, 32, 32)


class TestPresets:
    def test_cifar_like_shape(self):
        dataset = cifar_like(num_train=20, num_test=10)
        assert dataset.input_shape == (3, 32, 32)
        assert dataset.num_classes == 10

    def test_imagenet_like_shape(self):
        dataset = imagenet_like(num_train=20, num_test=10, image_size=64)
        assert dataset.input_shape == (3, 64, 64)
        assert dataset.num_classes == 20


class TestToyDatasets:
    def test_spirals_shapes_and_classes(self):
        points, labels = make_spirals(num_samples=300, num_classes=3)
        assert points.shape == (300, 2)
        assert set(np.unique(labels)) == {0, 1, 2}

    def test_spirals_not_linearly_separable(self):
        points, labels = make_spirals(num_samples=600, num_classes=2, noise=0.05, seed=0)
        # A linear classifier on raw coordinates should be near chance.
        from numpy.linalg import lstsq

        targets = np.where(labels == 0, -1.0, 1.0)
        design = np.hstack([points, np.ones((len(points), 1))])
        weights = lstsq(design, targets, rcond=None)[0]
        accuracy = np.mean(np.sign(design @ weights) == targets)
        assert accuracy < 0.75

    def test_blobs_separable(self):
        points, labels = make_blobs(num_samples=400, num_classes=4, spread=0.2, seed=0)
        assert points.shape[1] == 2
        centroids = np.stack([points[labels == c].mean(axis=0) for c in range(4)])
        predictions = np.argmin(
            ((points[:, None, :] - centroids[None]) ** 2).sum(axis=2), axis=1
        )
        assert (predictions == labels).mean() > 0.95


class TestArrayDataLoader:
    def test_batches_cover_dataset(self, rng):
        inputs = rng.standard_normal((25, 4))
        labels = np.arange(25)
        loader = ArrayDataLoader(inputs, labels, batch_size=10, shuffle=False)
        batches = list(loader)
        assert len(batches) == 3 == len(loader)
        assert sum(len(b[1]) for b in batches) == 25

    def test_drop_last(self, rng):
        loader = ArrayDataLoader(rng.standard_normal((25, 4)), np.arange(25),
                                 batch_size=10, drop_last=True)
        assert len(loader) == 2
        assert sum(len(b[1]) for b in loader) == 20

    def test_shuffle_changes_order_but_not_content(self, rng):
        labels = np.arange(50)
        loader = ArrayDataLoader(np.zeros((50, 1)), labels, batch_size=50, shuffle=True, seed=0)
        first_epoch = next(iter(loader))[1]
        assert not np.array_equal(first_epoch, labels)
        assert sorted(first_epoch) == list(labels)

    def test_shuffle_deterministic_per_seed(self):
        def first_batch(seed):
            loader = ArrayDataLoader(np.zeros((20, 1)), np.arange(20),
                                     batch_size=20, seed=seed)
            return next(iter(loader))[1]

        np.testing.assert_array_equal(first_batch(5), first_batch(5))
        assert not np.array_equal(first_batch(5), first_batch(6))

    def test_transform_applied(self, rng):
        inputs = rng.standard_normal((10, 3, 4, 4)) * 7 + 3
        loader = ArrayDataLoader(inputs, np.zeros(10), batch_size=10,
                                 transform=normalize_images, shuffle=False)
        batch, _ = next(iter(loader))
        assert abs(batch.mean()) < 1e-8

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            ArrayDataLoader(np.zeros((3, 2)), np.zeros(4))
        with pytest.raises(ValueError):
            ArrayDataLoader(np.zeros((3, 2)), np.zeros(3), batch_size=0)

    def test_train_and_test_loader_helpers(self):
        dataset = cifar_like(num_train=30, num_test=20)
        train = train_loader(dataset, batch_size=16, seed=0)
        test = data_loaders.test_loader(dataset, batch_size=16)
        assert train.num_samples == 30
        assert test.num_samples == 20
        batch, labels = next(iter(test))
        assert batch.shape == (16, 3, 32, 32)
