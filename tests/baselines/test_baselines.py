"""Tests for the fixed-point and low-bit float baseline schemes."""

import numpy as np
import pytest

from repro.baselines import (
    FixedPointFormat,
    FixedPointQuantizer,
    fixed_point_policy,
    fixed_point_quantize,
    fp8_policy,
    fp16_policy,
    make_loss_scaler,
)
from repro.posit import FP8_E4M3, FP8_E5M2, FP16


class TestFixedPointFormat:
    def test_widths_and_step(self):
        fmt = FixedPointFormat(2, 13)
        assert fmt.bits == 16
        assert fmt.step == 2.0**-13
        assert fmt.max_value == pytest.approx(4.0 - 2.0**-13)
        assert fmt.min_value == -4.0

    def test_validation(self):
        with pytest.raises(ValueError):
            FixedPointFormat(-1, 3)
        with pytest.raises(ValueError):
            FixedPointFormat(0, 0)

    def test_str(self):
        assert str(FixedPointFormat(2, 5)) == "Q2.5"


class TestFixedPointQuantize:
    def test_grid_values_unchanged(self):
        fmt = FixedPointFormat(3, 4)
        values = np.array([0.0, 0.25, -1.5, 3.0625])
        np.testing.assert_array_equal(fixed_point_quantize(values, fmt), values)

    def test_nearest_rounding(self):
        fmt = FixedPointFormat(3, 2)  # step 0.25
        assert fixed_point_quantize(0.3, fmt) == pytest.approx(0.25)
        assert fixed_point_quantize(0.4, fmt) == pytest.approx(0.5)

    def test_saturation(self):
        fmt = FixedPointFormat(2, 4)
        assert fixed_point_quantize(100.0, fmt) == fmt.max_value
        assert fixed_point_quantize(-100.0, fmt) == fmt.min_value

    def test_uniform_step_everywhere(self, rng):
        """Unlike posit, fixed point has the same absolute error at all scales."""
        fmt = FixedPointFormat(4, 8)
        small = rng.uniform(0.01, 0.02, 1000)
        large = rng.uniform(10.0, 10.01, 1000)
        err_small = np.abs(fixed_point_quantize(small, fmt) - small).max()
        err_large = np.abs(fixed_point_quantize(large, fmt) - large).max()
        assert err_small == pytest.approx(err_large, abs=fmt.step)

    def test_stochastic_rounding_unbiased(self):
        fmt = FixedPointFormat(3, 3)
        value = 0.3  # between 0.25 and 0.375
        samples = fixed_point_quantize(np.full(8000, value), fmt, rounding="stochastic",
                                       rng=np.random.default_rng(0))
        assert samples.mean() == pytest.approx(value, rel=0.01)

    def test_unknown_rounding_rejected(self):
        with pytest.raises(ValueError):
            fixed_point_quantize(1.0, FixedPointFormat(2, 2), rounding="bogus")

    def test_quantizer_object_and_policy_hook(self):
        fmt = FixedPointFormat(2, 6)
        quantizer = fmt.make_quantizer(rounding="zero")
        assert isinstance(quantizer, FixedPointQuantizer)
        np.testing.assert_array_equal(quantizer(np.array([0.1])),
                                      fixed_point_quantize(np.array([0.1]), fmt))


class TestBaselinePolicies:
    def test_fp16_policy_keeps_master_weights(self):
        policy = fp16_policy(keep_master_weights=True)
        assert policy.conv_formats.weight == FP16
        assert policy.conv_formats.weight_grad is None

    def test_fp16_policy_full_quantization(self):
        policy = fp16_policy(keep_master_weights=False)
        assert policy.conv_formats.weight_grad == FP16

    def test_fp8_policy_formats(self):
        policy = fp8_policy()
        assert policy.conv_formats.weight == FP8_E4M3
        assert policy.conv_formats.error == FP8_E5M2
        assert policy.conv_formats.weight_grad == FP16

    def test_fixed_point_policy_uses_stochastic_rounding(self):
        policy = fixed_point_policy()
        assert policy.rounding == "stochastic"
        assert policy.conv_formats.weight.bits == 16

    def test_policies_attach_to_models(self, rng):
        from repro.models import tiny_resnet

        for policy in (fp16_policy(), fp8_policy(), fixed_point_policy()):
            model = tiny_resnet(rng=rng)
            contexts = policy.attach(model)
            assert contexts

    def test_make_loss_scaler(self):
        scaler = make_loss_scaler(fp16_policy(), scale=256.0, dynamic=False)
        assert scaler.scale == 256.0
        assert not scaler.dynamic
