"""Tests for the model zoo: ResNets (the paper's models), MLP, LeNet."""

import numpy as np
import pytest

from repro.models import (
    BasicBlock,
    LeNet,
    MLP,
    ResNet,
    cifar_resnet8,
    cifar_resnet18,
    resnet18,
    tiny_resnet,
)
from repro.nn import BatchNorm2d, Conv2d
from repro.tensor import Tensor


class TestBasicBlock:
    def test_identity_shortcut_when_shapes_match(self, rng):
        block = BasicBlock(8, 8, stride=1, rng=rng)
        out = block(Tensor(rng.standard_normal((2, 8, 8, 8))))
        assert out.shape == (2, 8, 8, 8)

    def test_projection_shortcut_on_downsample(self, rng):
        block = BasicBlock(8, 16, stride=2, rng=rng)
        out = block(Tensor(rng.standard_normal((2, 8, 8, 8))))
        assert out.shape == (2, 16, 4, 4)

    def test_output_nonnegative_after_final_relu(self, rng):
        block = BasicBlock(4, 4, rng=rng)
        out = block(Tensor(rng.standard_normal((1, 4, 6, 6))))
        assert np.all(out.data >= 0)

    def test_gradients_flow_through_both_paths(self, rng):
        block = BasicBlock(4, 8, stride=2, rng=rng)
        x = Tensor(rng.standard_normal((1, 4, 8, 8)), requires_grad=True)
        block(x).sum().backward()
        assert x.grad is not None
        assert all(p.grad is not None for p in block.parameters())


class TestResNetArchitectures:
    def test_cifar_resnet18_structure(self):
        model = cifar_resnet18(base_width=8, rng=np.random.default_rng(0))
        description = model.describe()
        # ResNet-18: 1 stem conv + 2*2*4 block convs + 3 projection convs = 20 convs.
        assert description["num_conv_layers"] == 20
        assert description["num_bn_layers"] == 20
        assert description["stem"] == "cifar"

    def test_cifar_resnet18_full_width_parameter_count(self):
        """The real Cifar-ResNet-18 has ~11.2M parameters, like the paper's model."""
        model = cifar_resnet18(base_width=64, rng=np.random.default_rng(0))
        assert 10_000_000 < model.num_parameters() < 12_000_000

    def test_imagenet_resnet18_parameter_count(self):
        """Standard ResNet-18 (1000 classes) has ~11.7M parameters."""
        model = resnet18(rng=np.random.default_rng(0))
        assert 11_000_000 < model.num_parameters() < 12_500_000

    def test_cifar_forward_shape(self, rng):
        model = cifar_resnet8(base_width=8, rng=rng)
        out = model(Tensor(rng.standard_normal((2, 3, 32, 32))))
        assert out.shape == (2, 10)

    def test_imagenet_stem_downsamples_more(self, rng):
        model = ResNet((1, 1), num_classes=5, base_width=8, stem="imagenet", rng=rng)
        out = model(Tensor(rng.standard_normal((1, 3, 64, 64))))
        assert out.shape == (1, 5)

    def test_accepts_raw_numpy_input(self, rng):
        model = tiny_resnet(rng=rng)
        assert model(rng.standard_normal((1, 3, 16, 16))).shape == (1, 10)

    def test_invalid_stem_rejected(self):
        with pytest.raises(ValueError):
            ResNet(stem="bogus")

    def test_deterministic_given_seed(self):
        model_a = tiny_resnet(rng=np.random.default_rng(7))
        model_b = tiny_resnet(rng=np.random.default_rng(7))
        for p_a, p_b in zip(model_a.parameters(), model_b.parameters()):
            np.testing.assert_array_equal(p_a.data, p_b.data)

    def test_backward_through_whole_network(self, rng):
        model = tiny_resnet(base_width=4, rng=rng)
        out = model(Tensor(rng.standard_normal((2, 3, 16, 16))))
        out.sum().backward()
        assert all(p.grad is not None for p in model.parameters())

    def test_conv_layers_have_no_bias(self, rng):
        model = tiny_resnet(rng=rng)
        convs = [m for m in model.modules() if isinstance(m, Conv2d)]
        assert all(conv.bias is None for conv in convs)

    def test_bn_follows_every_conv(self, rng):
        model = cifar_resnet8(rng=rng)
        num_convs = sum(1 for m in model.modules() if isinstance(m, Conv2d))
        num_bns = sum(1 for m in model.modules() if isinstance(m, BatchNorm2d))
        assert num_convs == num_bns


class TestMLP:
    def test_forward_shape(self, rng):
        model = MLP(10, hidden=(16, 8), num_classes=4, rng=rng)
        assert model(Tensor(rng.standard_normal((5, 10)))).shape == (5, 4)

    def test_flattens_high_rank_input(self, rng):
        model = MLP(3 * 4 * 4, hidden=(8,), num_classes=2, rng=rng)
        assert model(Tensor(rng.standard_normal((5, 3, 4, 4)))).shape == (5, 2)

    def test_dropout_layers_inserted(self, rng):
        model = MLP(4, hidden=(8,), dropout=0.5, rng=rng)
        from repro.nn import Dropout

        assert any(isinstance(m, Dropout) for m in model.modules())

    def test_no_hidden_layers(self, rng):
        model = MLP(4, hidden=(), num_classes=3, rng=rng)
        assert model(Tensor(rng.standard_normal((2, 4)))).shape == (2, 3)


class TestLeNet:
    def test_forward_shape(self, rng):
        model = LeNet(rng=rng)
        assert model(Tensor(rng.standard_normal((2, 3, 32, 32)))).shape == (2, 10)

    def test_without_batch_norm(self, rng):
        model = LeNet(batch_norm=False, rng=rng)
        assert not any(isinstance(m, BatchNorm2d) for m in model.modules())

    def test_invalid_image_size(self):
        with pytest.raises(ValueError):
            LeNet(image_size=30)

    def test_grayscale_input(self, rng):
        model = LeNet(in_channels=1, image_size=28, rng=rng)
        assert model(Tensor(rng.standard_normal((2, 1, 28, 28)))).shape == (2, 10)
