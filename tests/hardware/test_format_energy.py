"""Tests for the generalized (any-NumberFormat) hardware energy path."""

import numpy as np
import pytest

from repro.core import QuantizationPolicy
from repro.formats import FixedPointFormat, parse_format
from repro.hardware import (
    FP32MAC,
    FixedPointMAC,
    FloatMAC,
    PositMAC,
    format_bits,
    mac_unit_for_format,
    training_step_report,
)
from repro.hardware.accelerator import _per_mac_energy_pj
from repro.hardware.gates import GENERIC_28NM
from repro.hardware.synthesis import TABLE5_CLOCK_MHZ, calibrate_to_reference
from repro.models import tiny_resnet
from repro.posit import FP16, FP32, PositConfig


class TestMacUnitDispatch:
    def test_none_is_fp32(self):
        assert isinstance(mac_unit_for_format(None), FP32MAC)

    def test_posit(self):
        unit = mac_unit_for_format(PositConfig(8, 1))
        assert isinstance(unit, PositMAC)
        assert unit.config == PositConfig(8, 1)

    def test_float(self):
        unit = mac_unit_for_format(FP16)
        assert isinstance(unit, FloatMAC)

    def test_fp32_float_format_uses_baseline_unit(self):
        assert isinstance(mac_unit_for_format(FP32), FP32MAC)

    def test_fixed_point(self):
        unit = mac_unit_for_format(FixedPointFormat(2, 13))
        assert isinstance(unit, FixedPointMAC)

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError, match="no MAC cost model"):
            mac_unit_for_format(object())


class TestFunctionalModels:
    def test_fixed_point_mac_exact_grid(self):
        unit = FixedPointMAC(FixedPointFormat(2, 13))
        assert unit.mac(0.5, 0.5, 0.25) == pytest.approx(0.5)

    def test_fixed_point_mac_saturates(self):
        unit = FixedPointMAC(FixedPointFormat(2, 13))
        fmt = unit.format
        assert unit.mac(3.9, 3.9, 0.0) <= fmt.max_value

    def test_float_mac_matches_fp32_at_full_width(self):
        float_unit = FloatMAC(FP32)
        fp32_unit = FP32MAC()
        rng = np.random.default_rng(0)
        for _ in range(16):
            a, b, c = rng.normal(size=3)
            assert float_unit.mac(a, b, c) == fp32_unit.mac(a, b, c)


class TestCostOrdering:
    def per_mac(self, fmt):
        calibration = calibrate_to_reference(GENERIC_28NM)
        return _per_mac_energy_pj(fmt, calibration, GENERIC_28NM, TABLE5_CLOCK_MHZ)

    def test_narrow_formats_cost_less_than_fp32(self):
        fp32 = self.per_mac(None)
        assert self.per_mac(PositConfig(8, 1)) < fp32
        assert self.per_mac(FP16) < fp32
        assert self.per_mac(FixedPointFormat(2, 13)) < fp32

    def test_each_family_prices_distinctly(self):
        """The old path priced every non-posit format exactly as FP32."""
        fp32 = self.per_mac(None)
        for spec in ("fp16", "fp8_e4m3", "fixed(16,13)", "fixed(8,5)"):
            assert self.per_mac(parse_format(spec)) != fp32


class TestTrainingStepReport:
    @pytest.fixture(scope="class")
    def model(self):
        return tiny_resnet(num_classes=10, rng=np.random.default_rng(0))

    def test_fixed_point_policy_now_saves_energy(self, model):
        """Regression: fixed/float policies used to be priced as FP32 compute."""
        fp32 = training_step_report(model, None, batch_size=8)
        fixed = training_step_report(
            model, QuantizationPolicy.uniform_format("fixed(16,13)"), batch_size=8)
        fp16 = training_step_report(
            model, QuantizationPolicy.uniform_format("fp16"), batch_size=8)
        assert fixed["compute_energy_uj"] < fp32["compute_energy_uj"]
        assert fp16["compute_energy_uj"] < fp32["compute_energy_uj"]
        assert fixed["memory_energy_uj"] < fp32["memory_energy_uj"]

    def test_posit_path_unchanged(self, model):
        posit = training_step_report(
            model, QuantizationPolicy.cifar_paper(), batch_size=8)
        fp32 = training_step_report(model, None, batch_size=8)
        assert posit["compute_energy_uj"] < fp32["compute_energy_uj"]


class TestFormatBits:
    def test_all_families(self):
        assert format_bits(None) == 32
        assert format_bits(PositConfig(8, 1)) == 8
        assert format_bits(FP16) == 16
        assert format_bits(FixedPointFormat(2, 13)) == 16

    def test_unknown_rejected(self):
        with pytest.raises(TypeError):
            format_bits("posit(8,1)")
