"""Tests for the hardware cost primitives and the gate library."""

import pytest

from repro.hardware import (
    GENERIC_28NM,
    ComponentCost,
    GateLibrary,
    absolute_value,
    adder,
    barrel_shifter,
    comparator,
    incrementer,
    lod,
    lzd,
    multiplier,
    mux2,
    register,
    wire,
    xor_row,
)


class TestGateLibrary:
    def test_area_conversion(self):
        assert GENERIC_28NM.area_um2(1000) == pytest.approx(1000 * GENERIC_28NM.gate_area_um2)

    def test_delay_conversion(self):
        assert GENERIC_28NM.delay_ns(10) == pytest.approx(10 * GENERIC_28NM.gate_delay_ns)

    def test_power_scales_with_frequency(self):
        low = GENERIC_28NM.power_mw(1000, clock_mhz=100)
        high = GENERIC_28NM.power_mw(1000, clock_mhz=1000)
        assert high > low

    def test_power_has_leakage_floor(self):
        assert GENERIC_28NM.power_mw(1000, clock_mhz=0) > 0

    def test_custom_library(self):
        library = GateLibrary(name="test", gate_area_um2=1.0, gate_delay_ns=0.01)
        assert library.area_um2(5) == 5.0


class TestComponentComposition:
    def test_serial_adds_delay_and_area(self):
        a = ComponentCost("a", 10, 2)
        b = ComponentCost("b", 20, 3)
        combined = a.serial(b)
        assert combined.area_ge == 30
        assert combined.delay_levels == 5

    def test_parallel_takes_max_delay(self):
        a = ComponentCost("a", 10, 2)
        b = ComponentCost("b", 20, 7)
        combined = a.parallel(b)
        assert combined.area_ge == 30
        assert combined.delay_levels == 7

    def test_scaled(self):
        cost = ComponentCost("x", 10, 4).scaled(area_factor=2, delay_factor=0.5)
        assert cost.area_ge == 20 and cost.delay_levels == 2

    def test_zero_identity(self):
        cost = ComponentCost("x", 10, 4)
        combined = cost.serial(ComponentCost.zero())
        assert combined.area_ge == 10 and combined.delay_levels == 4

    def test_wire_is_free(self):
        assert wire().area_ge == 0 and wire().delay_levels == 0


class TestPrimitiveScaling:
    """Costs must scale the way the underlying structures do."""

    def test_lzd_area_linear_delay_logarithmic(self):
        assert lzd(32).area_ge == pytest.approx(2 * lzd(16).area_ge)
        assert lzd(32).delay_levels < 2 * lzd(16).delay_levels

    def test_lod_equals_lzd(self):
        assert lod(16).area_ge == lzd(16).area_ge

    def test_barrel_shifter_area_superlinear(self):
        assert barrel_shifter(32).area_ge > 2 * barrel_shifter(16).area_ge

    def test_barrel_shifter_bounded_shift_cheaper(self):
        assert barrel_shifter(32, max_shift=3).area_ge < barrel_shifter(32).area_ge

    def test_adder_wider_is_bigger_and_slower(self):
        assert adder(32).area_ge > adder(16).area_ge
        assert adder(32).delay_levels > adder(16).delay_levels

    def test_incrementer_cheaper_than_adder(self):
        assert incrementer(16).area_ge < adder(16).area_ge

    def test_multiplier_area_quadratic(self):
        small = multiplier(8, 8).area_ge
        large = multiplier(16, 16).area_ge
        assert large > 3 * small

    def test_multiplier_dominates_fp32_datapath(self):
        # The 24x24 significand multiplier is the largest single FP32 component.
        assert multiplier(24, 24).area_ge > adder(48).area_ge
        assert multiplier(24, 24).area_ge > barrel_shifter(50).area_ge

    def test_mux_and_misc_widths(self):
        assert mux2(16).area_ge == pytest.approx(2 * mux2(8).area_ge)
        assert xor_row(8).area_ge > 0
        assert comparator(8).area_ge > 0
        assert absolute_value(8).area_ge > incrementer(8).area_ge
        assert register(8).delay_levels == 0
