"""Tests for the MAC units, the synthesis model (Tables IV/V), and energy accounting."""

import numpy as np
import pytest

from repro.core import QuantizationPolicy
from repro.hardware import (
    FP32MAC,
    Calibration,
    PositMAC,
    calibrate_to_reference,
    codec_optimization_report,
    communication_saving,
    model_size_bytes,
    synthesize,
    table4_report,
    table5_report,
    training_step_traffic,
)
from repro.models import tiny_resnet
from repro.posit import PositConfig, decode, encode, fma

TABLE5_FORMATS = [PositConfig(8, 1), PositConfig(8, 2), PositConfig(16, 1), PositConfig(16, 2)]


class TestPositMACFunctional:
    @pytest.mark.parametrize("cfg", TABLE5_FORMATS, ids=str)
    def test_matches_reference_fma(self, cfg, rng):
        mac = PositMAC(cfg)
        for _ in range(200):
            a, b, c = rng.uniform(-20, 20, 3)
            bits = [encode(float(v), cfg) for v in (a, b, c)]
            assert mac.mac(*bits) == fma(*bits, cfg, rounding="zero")

    def test_nar_propagation(self):
        cfg = PositConfig(8, 1)
        mac = PositMAC(cfg)
        nar = cfg.nar_pattern
        assert mac.mac(nar, encode(1.0, cfg), encode(1.0, cfg)) == nar

    def test_zero_times_anything(self):
        cfg = PositConfig(8, 1)
        mac = PositMAC(cfg)
        one = encode(1.0, cfg)
        assert decode(mac.mac(0, one, one), cfg) == 1.0

    def test_mac_value_convenience(self):
        mac = PositMAC(PositConfig(16, 1))
        assert mac.mac_value(2.0, 3.0, 1.0) == 7.0

    def test_optimized_and_original_codec_same_results(self, rng):
        cfg = PositConfig(8, 2)
        original = PositMAC(cfg, optimized_codec=False)
        optimized = PositMAC(cfg, optimized_codec=True)
        for _ in range(100):
            bits = [encode(float(v), cfg) for v in rng.uniform(-5, 5, 3)]
            assert original.mac(*bits) == optimized.mac(*bits)


class TestFP32MAC:
    def test_exact_for_small_products(self):
        assert FP32MAC().mac(1.5, 2.0, 0.25) == 3.25

    def test_rounds_to_single_precision(self):
        result = FP32MAC().mac(1.0, 1.0, 2.0**-30)
        assert result == 1.0  # the tiny addend falls below the 24-bit mantissa


class TestStructuralClaims:
    """The relative claims of §IV backed by the cost model."""

    def test_codec_fraction_near_40_percent_for_original(self):
        """The paper: encoder+decoder of [6] take ~40% of the MAC delay."""
        fractions = [PositMAC(cfg, optimized_codec=False).codec_delay_fraction()
                     for cfg in TABLE5_FORMATS]
        assert all(0.3 <= fraction <= 0.55 for fraction in fractions)

    def test_optimized_codec_reduces_fraction(self):
        for cfg in TABLE5_FORMATS:
            original = PositMAC(cfg, optimized_codec=False).codec_delay_fraction()
            optimized = PositMAC(cfg, optimized_codec=True).codec_delay_fraction()
            assert optimized < original

    def test_posit8_mac_much_smaller_than_fp32(self):
        fp32_area = FP32MAC().cost().area_ge
        for cfg in (PositConfig(8, 1), PositConfig(8, 2)):
            assert PositMAC(cfg).cost().area_ge < 0.45 * fp32_area

    def test_posit16_mac_smaller_than_fp32(self):
        fp32_area = FP32MAC().cost().area_ge
        for cfg in (PositConfig(16, 1), PositConfig(16, 2)):
            area = PositMAC(cfg).cost().area_ge
            assert area < fp32_area
            assert area > 0.4 * fp32_area  # but clearly not 4x smaller

    def test_higher_es_slightly_cheaper_at_same_width(self):
        """Larger es leaves fewer mantissa bits, shrinking the multiplier."""
        assert (PositMAC(PositConfig(8, 2)).cost().area_ge
                < PositMAC(PositConfig(8, 1)).cost().area_ge)


class TestSynthesisReports:
    def test_calibration_reproduces_fp32_reference(self):
        calibration = calibrate_to_reference()
        result = synthesize(FP32MAC().cost(), calibration=calibration)
        assert result.area_um2 == pytest.approx(4322.0, rel=1e-6)
        assert result.power_mw == pytest.approx(2.52, rel=1e-6)

    def test_identity_calibration(self):
        raw = synthesize(FP32MAC().cost(), calibration=Calibration.identity())
        assert raw.area_um2 > 0 and raw.power_mw > 0 and raw.delay_ns > 0

    def test_table4_shape(self):
        rows = table4_report()
        assert len(rows) == 6  # 3 formats x (encoder, decoder)
        for row in rows:
            assert row["optimized_delay_ns"] < row["original_delay_ns"]
            assert 5.0 <= row["speedup_percent"] <= 45.0

    def test_table4_delay_grows_with_width(self):
        rows = table4_report()
        decoder_delays = {row["format"]: row["optimized_delay_ns"]
                          for row in rows if row["unit"] == "decoder"}
        assert decoder_delays["posit(8,0)"] < decoder_delays["posit(16,1)"]
        assert decoder_delays["posit(16,1)"] < decoder_delays["posit(32,3)"]

    def test_table5_shape(self):
        rows = table5_report()
        assert rows[0]["design"] == "FP32"
        by_design = {row["design"]: row for row in rows}
        # 8-bit posit MACs achieve large reductions, 16-bit moderate ones.
        assert by_design["posit(8,1)"]["power_reduction_percent"] > 60
        assert by_design["posit(8,2)"]["area_reduction_percent"] > 60
        assert 5 < by_design["posit(16,1)"]["power_reduction_percent"] < 60
        assert by_design["posit(16,2)"]["area_um2"] < by_design["posit(16,1)"]["area_um2"]

    def test_table5_all_posit_below_fp32(self):
        rows = table5_report()
        fp32 = rows[0]
        for row in rows[1:]:
            assert row["power_mw"] < fp32["power_mw"]
            assert row["area_um2"] < fp32["area_um2"]

    def test_codec_optimization_report(self):
        rows = codec_optimization_report()
        assert len(rows) == 4
        for row in rows:
            assert row["optimized_mac_delay_ns"] < row["original_mac_delay_ns"]
            assert row["original_codec_fraction"] > row["optimized_codec_fraction"]


class TestEnergyAccounting:
    def test_model_size_ratio_for_8bit_policy(self, rng):
        """8-bit storage shrinks the (conv-dominated) model by roughly 4x (§IV/§V)."""
        model = tiny_resnet(base_width=8, rng=rng)
        policy = QuantizationPolicy.uniform(8)
        fp32_size = model_size_bytes(model, None).parameter_bytes
        posit_size = model_size_bytes(model, policy).parameter_bytes
        assert fp32_size / posit_size == pytest.approx(4.0, rel=0.05)

    def test_model_size_ratio_for_16bit_policy(self, rng):
        model = tiny_resnet(base_width=8, rng=rng)
        policy = QuantizationPolicy.imagenet_paper()
        ratio = (model_size_bytes(model, None).parameter_bytes
                 / model_size_bytes(model, policy).parameter_bytes)
        assert ratio == pytest.approx(2.0, rel=0.05)

    def test_communication_saving_in_2_to_4x_band(self, rng):
        """The §V claim: communication overhead saved by 2-4x."""
        model = tiny_resnet(base_width=8, rng=rng)
        for policy in (QuantizationPolicy.cifar_paper(), QuantizationPolicy.imagenet_paper()):
            saving = communication_saving(model, policy, batch_size=16)
            assert 2.0 <= saving["traffic_ratio"] <= 4.2
            assert 2.0 <= saving["model_size_ratio"] <= 4.2

    def test_traffic_scales_with_batch_size(self, rng):
        model = tiny_resnet(base_width=8, rng=rng)
        small = training_step_traffic(model, None, batch_size=8)
        large = training_step_traffic(model, None, batch_size=64)
        assert large.bytes_per_step > small.bytes_per_step

    def test_energy_proportional_to_traffic(self, rng):
        model = tiny_resnet(base_width=8, rng=rng)
        report = training_step_traffic(model, None, batch_size=8)
        assert report.dram_energy_uj == pytest.approx(report.bytes_per_step * 160e-6, rel=1e-6)
