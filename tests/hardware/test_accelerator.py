"""Tests for the first-order training-accelerator model (§V outlook)."""

import numpy as np
import pytest

from repro.core import QuantizationPolicy
from repro.hardware import (
    AcceleratorConfig,
    accelerator_comparison,
    count_training_macs,
    training_step_report,
)
from repro.models import MLP, cifar_resnet8, tiny_resnet
from repro.nn import Conv2d, Sequential


class TestWorkloadCounting:
    def test_single_conv_layer_macs(self, rng):
        # 3x3 conv, 4->8 channels, 16x16 input with padding 1 -> 16x16 output.
        model = Sequential(Conv2d(4, 8, 3, padding=1, rng=rng))
        workloads = count_training_macs(model, input_hw=(16, 16))
        conv = workloads[0]
        assert conv.forward_macs == 16 * 16 * 8 * 4 * 9
        assert conv.backward_macs == 2 * conv.forward_macs
        assert conv.parameters == 8 * 4 * 9

    def test_stride_reduces_downstream_work(self, rng):
        strided = Sequential(Conv2d(3, 8, 3, stride=2, padding=1, rng=rng),
                             Conv2d(8, 8, 3, padding=1, rng=rng))
        unstrided = Sequential(Conv2d(3, 8, 3, stride=1, padding=1, rng=rng),
                               Conv2d(8, 8, 3, padding=1, rng=rng))
        macs_strided = count_training_macs(strided, (32, 32))[1].forward_macs
        macs_unstrided = count_training_macs(unstrided, (32, 32))[1].forward_macs
        assert macs_strided == macs_unstrided / 4

    def test_linear_layer_macs(self, rng):
        model = MLP(10, hidden=(20,), num_classes=5, rng=rng)
        workloads = count_training_macs(model)
        linear_macs = [w.forward_macs for w in workloads if w.kind == "linear"]
        assert linear_macs == [200, 100]

    def test_resnet_conv_dominates(self, rng):
        model = cifar_resnet8(base_width=8, rng=rng)
        workloads = count_training_macs(model, (32, 32))
        conv_macs = sum(w.total_macs for w in workloads if w.kind == "conv")
        other_macs = sum(w.total_macs for w in workloads if w.kind != "conv")
        assert conv_macs > 10 * other_macs

    def test_total_macs_scale_with_resolution(self, rng):
        model = tiny_resnet(base_width=8, rng=rng)
        small = sum(w.total_macs for w in count_training_macs(model, (16, 16)))
        large = sum(w.total_macs for w in count_training_macs(model, (32, 32)))
        assert large == pytest.approx(4 * small, rel=0.1)


class TestAcceleratorModel:
    def test_throughput(self):
        config = AcceleratorConfig(num_pes=128, clock_mhz=500, utilization=0.5)
        assert config.macs_per_second == 128 * 500e6 * 0.5

    def test_step_report_fields(self, rng):
        model = tiny_resnet(base_width=8, rng=rng)
        report = training_step_report(model, None, batch_size=8, input_hw=(16, 16))
        assert report["total_macs"] > 0
        assert report["step_seconds"] > 0
        assert report["total_energy_uj"] == pytest.approx(
            report["compute_energy_uj"] + report["memory_energy_uj"])

    def test_posit_step_cheaper_than_fp32(self, rng):
        model = tiny_resnet(base_width=8, rng=rng)
        comparison = accelerator_comparison(model, QuantizationPolicy.cifar_paper(),
                                            batch_size=8, input_hw=(16, 16))
        assert comparison["compute_energy_ratio"] > 1.2
        assert comparison["memory_energy_ratio"] > 1.5
        assert comparison["total_energy_ratio"] > 1.2

    def test_8bit_policy_saves_more_than_16bit(self, rng):
        model = tiny_resnet(base_width=8, rng=rng)
        ratio_8bit = accelerator_comparison(model, QuantizationPolicy.uniform(8),
                                            batch_size=4, input_hw=(16, 16))
        ratio_16bit = accelerator_comparison(model, QuantizationPolicy.imagenet_paper(),
                                             batch_size=4, input_hw=(16, 16))
        assert ratio_8bit["total_energy_ratio"] > ratio_16bit["total_energy_ratio"]

    def test_step_time_independent_of_format(self, rng):
        """The simple model assumes one MAC per PE per cycle regardless of width."""
        model = tiny_resnet(base_width=8, rng=rng)
        fp32 = training_step_report(model, None, batch_size=4, input_hw=(16, 16))
        posit = training_step_report(model, QuantizationPolicy.uniform(8),
                                     batch_size=4, input_hw=(16, 16))
        assert fp32["step_seconds"] == pytest.approx(posit["step_seconds"])
