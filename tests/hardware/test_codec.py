"""Tests for the posit decoder/encoder models (Figs. 5 and 6)."""

import math

import numpy as np
import pytest

from repro.hardware import PositDecoder, PositEncoder, internal_format_for_posit
from repro.posit import PositConfig, decode, decode_fields, encode

FORMATS = [PositConfig(8, 0), PositConfig(8, 1), PositConfig(16, 1), PositConfig(16, 2)]


class TestDecoderFunctional:
    @pytest.mark.parametrize("cfg", FORMATS, ids=str)
    def test_decoded_value_matches_reference(self, cfg, rng):
        decoder = PositDecoder(cfg)
        for code in rng.integers(0, cfg.code_count, size=100):
            code = int(code)
            reference = decode(code, cfg)
            decoded = decoder.decode(code)
            if math.isnan(reference):
                assert decoded.is_nar
            else:
                assert decoded.value == reference

    def test_exhaustive_equivalence_8bit(self):
        cfg = PositConfig(8, 1)
        decoder = PositDecoder(cfg)
        for code in range(cfg.code_count):
            reference = decode(code, cfg)
            decoded = decoder.decode(code)
            if math.isnan(reference):
                assert decoded.is_nar
            elif reference == 0:
                assert decoded.is_zero
            else:
                assert decoded.value == reference

    def test_effective_exponent_combines_regime_and_exponent(self):
        cfg = PositConfig(8, 1)
        code = encode(6.0, cfg)  # 6 = 2**2 * 1.5 -> k=1, e=0
        decoded = PositDecoder(cfg).decode(code)
        fields = decode_fields(code, cfg)
        assert decoded.effective_exponent == fields.regime * 2 + fields.exponent == 2

    def test_original_and_optimized_functionally_identical(self, rng):
        """Fig. 5: the optimization is purely structural."""
        cfg = PositConfig(16, 1)
        original = PositDecoder(cfg, optimized=False)
        optimized = PositDecoder(cfg, optimized=True)
        for code in rng.integers(0, cfg.code_count, size=200):
            assert original.decode(int(code)) == optimized.decode(int(code))


class TestEncoderFunctional:
    @pytest.mark.parametrize("cfg", FORMATS, ids=str)
    def test_decode_encode_roundtrip(self, cfg, rng):
        decoder = PositDecoder(cfg)
        encoder = PositEncoder(cfg)
        for code in rng.integers(0, cfg.code_count, size=100):
            code = int(code)
            if code == cfg.nar_pattern:
                continue
            assert encoder.encode(decoder.decode(code)) == code

    def test_nar_and_zero_handling(self):
        cfg = PositConfig(8, 1)
        encoder = PositEncoder(cfg)
        decoder = PositDecoder(cfg)
        assert encoder.encode(decoder.decode(0)) == 0
        assert encoder.encode(decoder.decode(cfg.nar_pattern)) == cfg.nar_pattern

    def test_encode_value_truncates_like_algorithm1(self):
        cfg = PositConfig(8, 1)
        encoder = PositEncoder(cfg)
        assert decode(encoder.encode_value(5.3), cfg) <= 5.3

    def test_original_and_optimized_functionally_identical(self, rng):
        cfg = PositConfig(16, 1)
        decoder = PositDecoder(cfg)
        original = PositEncoder(cfg, optimized=False)
        optimized = PositEncoder(cfg, optimized=True)
        for code in rng.integers(0, cfg.code_count, size=200):
            decoded = decoder.decode(int(code))
            assert original.encode(decoded) == optimized.encode(decoded)


class TestCodecCosts:
    """The structural claims of Figs. 5/6 and Table IV."""

    @pytest.mark.parametrize("cfg", FORMATS, ids=str)
    def test_optimized_decoder_is_faster(self, cfg):
        original = PositDecoder(cfg, optimized=False).cost()
        optimized = PositDecoder(cfg, optimized=True).cost()
        assert optimized.delay_levels < original.delay_levels

    @pytest.mark.parametrize("cfg", FORMATS, ids=str)
    def test_optimized_encoder_is_faster(self, cfg):
        original = PositEncoder(cfg, optimized=False).cost()
        optimized = PositEncoder(cfg, optimized=True).cost()
        assert optimized.delay_levels < original.delay_levels

    def test_optimization_trades_area_for_delay(self):
        """Duplicating the shifter costs area — the paper's stated trade-off."""
        cfg = PositConfig(16, 1)
        assert (PositDecoder(cfg, optimized=True).cost().area_ge
                > PositDecoder(cfg, optimized=False).cost().area_ge)
        assert (PositEncoder(cfg, optimized=True).cost().area_ge
                > PositEncoder(cfg, optimized=False).cost().area_ge)

    def test_cost_grows_with_word_size(self):
        small = PositDecoder(PositConfig(8, 0)).cost()
        large = PositDecoder(PositConfig(32, 3)).cost()
        assert large.area_ge > small.area_ge
        assert large.delay_levels > small.delay_levels

    def test_encoder_cost_grows_with_word_size(self):
        small = PositEncoder(PositConfig(8, 0)).cost()
        large = PositEncoder(PositConfig(32, 3)).cost()
        assert large.area_ge > small.area_ge


class TestInternalFormat:
    def test_covers_posit_exponent_range(self):
        for cfg in FORMATS:
            spec = internal_format_for_posit(cfg)
            assert 2 ** (spec.exponent_bits - 1) >= cfg.max_exponent

    def test_mantissa_covers_posit_fraction(self):
        for cfg in FORMATS:
            spec = internal_format_for_posit(cfg)
            max_fraction_bits = cfg.n - cfg.es - 3
            assert spec.mantissa_bits >= max_fraction_bits

    def test_smaller_posit_needs_smaller_datapath(self):
        spec8 = internal_format_for_posit(PositConfig(8, 1))
        spec16 = internal_format_for_posit(PositConfig(16, 1))
        assert spec8.mantissa_bits < spec16.mantissa_bits
