"""Tests for the dense n-bit code packer."""

import numpy as np
import pytest

from repro.serve import pack_codes, packed_nbytes, unpack_codes


@pytest.mark.parametrize("bits", [1, 3, 5, 6, 7, 8, 11, 16, 24, 32])
def test_round_trip_random_codes(bits):
    rng = np.random.default_rng(bits)
    codes = rng.integers(0, 1 << bits, size=517, dtype=np.int64)
    data = pack_codes(codes, bits)
    assert len(data) == packed_nbytes(len(codes), bits)
    recovered = unpack_codes(data, bits, len(codes))
    assert np.array_equal(recovered, codes)


def test_sub_byte_density():
    # 1000 posit(6,1) codes must pack to exactly ceil(6000/8) = 750 bytes.
    codes = np.arange(1000, dtype=np.int64) % 64
    assert len(pack_codes(codes, 6)) == 750


def test_masks_out_of_range_codes():
    # Codes are masked to their low bits; negative two's-complement int64
    # codes keep their n-bit pattern.
    codes = np.array([-1, 256, 255], dtype=np.int64)
    recovered = unpack_codes(pack_codes(codes, 8), 8, 3)
    assert recovered.tolist() == [255, 0, 255]


def test_multidimensional_input_flattens_in_c_order():
    codes = np.arange(24, dtype=np.int64).reshape(2, 3, 4)
    recovered = unpack_codes(pack_codes(codes, 5), 5, 24)
    assert np.array_equal(recovered, codes.reshape(-1))


def test_empty_array():
    assert pack_codes(np.zeros(0, dtype=np.int64), 8) == b""
    assert unpack_codes(b"", 8, 0).size == 0


def test_truncated_buffer_rejected():
    data = pack_codes(np.arange(10, dtype=np.int64), 7)
    with pytest.raises(ValueError, match="too short"):
        unpack_codes(data[:-1], 7, 10)


def test_invalid_width_rejected():
    codes = np.zeros(4, dtype=np.int64)
    for bits in (0, -1, 33):
        with pytest.raises(ValueError, match="code width"):
            pack_codes(codes, bits)


def test_non_integer_input_rejected():
    with pytest.raises(TypeError, match="integer array"):
        pack_codes(np.zeros(4, dtype=np.float64), 8)
