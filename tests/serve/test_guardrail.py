"""Tests for the artifact v1.1 startup accuracy guardrail.

Export embeds a held-out calibration batch (inputs + expected serving-path
logits + reference accuracy) in the manifest; every serving process replays
it before accepting traffic and refuses to serve — :class:`GuardrailError`
— when bit-identity or the accuracy tolerance is violated.
"""

import json
import os
import shutil
import signal
import time

import numpy as np
import pytest
from artifact_tools import rewrite_manifest, rewrite_segment

from repro.api import ExperimentConfig
from repro.cli import main as cli_main
from repro.serve import (
    ARTIFACT_MINOR_VERSION,
    ARTIFACT_VERSION,
    ClusterConfig,
    GuardrailError,
    InferenceEngine,
    ServeCluster,
    artifact_info,
    build_guardrail,
    train_and_export,
)


def small_config(**overrides) -> ExperimentConfig:
    base = dict(name="guardrail_test", dataset="blobs", model="mlp",
                policy="posit(8,1)", epochs=1, train_size=64, test_size=32,
                batch_size=16, num_classes=3, model_kwargs={"hidden": [16]})
    base.update(overrides)
    return ExperimentConfig(**base)


@pytest.fixture(scope="module")
def artifact(tmp_path_factory):
    path = tmp_path_factory.mktemp("guardrail") / "model.rpak"
    manifest, _history = train_and_export(small_config(), path)
    return str(path), manifest


# --------------------------------------------------------------------- #
# Export-side: the block exists and is exact
# --------------------------------------------------------------------- #
class TestGuardrailExport:
    def test_manifest_carries_guardrail_block(self, artifact):
        _path, manifest = artifact
        assert manifest["version"] == ARTIFACT_VERSION == 2
        assert manifest["version_minor"] == ARTIFACT_MINOR_VERSION
        block = manifest["guardrail"]
        assert block["samples"] == 16
        assert len(block["inputs"]) == 16
        assert len(block["logits"]) == 16
        assert len(block["labels"]) == 16
        assert 0.0 <= block["reference_accuracy"] <= 1.0
        assert block["tolerance"] == 0.0
        assert block["quantize_activations"] is True
        # v2 exports also pin the per-tensor format assignment.
        assert block["tensor_formats"] == {
            entry["name"]: entry["format"]
            for entry in manifest["tensors"] if entry["kind"] == "param"}

    def test_recorded_logits_match_serving_path_exactly(self, artifact):
        path, manifest = artifact
        block = manifest["guardrail"]
        engine = InferenceEngine(path)
        replayed = engine.predict_batch(np.asarray(block["inputs"]))
        assert np.array_equal(replayed, np.asarray(block["logits"]))

    def test_guardrail_rewrite_keeps_weights_byte_identical(self, artifact):
        """The second save (with the guardrail) must not move a single
        weight bit: the manifests' tensor tables — per-segment SHA-256
        included — agree."""
        path, manifest = artifact
        on_disk = artifact_info(path)
        assert on_disk["tensors"] == manifest["tensors"]
        assert all("sha256" in entry for entry in on_disk["tensors"])
        assert "guardrail" in on_disk

    def test_export_can_disable_guardrail(self, tmp_path):
        from repro.api import build_experiment
        from repro.serve import export_experiment

        experiment = build_experiment(small_config())
        experiment.run()
        manifest = export_experiment(experiment, tmp_path / "no_guard.rpak",
                                     guardrail_samples=0)
        assert "guardrail" not in manifest
        engine = InferenceEngine(tmp_path / "no_guard.rpak")
        assert engine.guardrail_status == "absent"

    def test_build_guardrail_rejects_empty(self, artifact, tmp_path):
        path, _manifest = artifact
        with pytest.raises(ValueError, match="at least 1 sample"):
            build_guardrail(path, loader=iter(()), samples=0)
        with pytest.raises(ValueError, match="no batches"):
            build_guardrail(path, loader=iter(()))


# --------------------------------------------------------------------- #
# Serving-side: replay, refusal, escape hatches
# --------------------------------------------------------------------- #
class TestGuardrailReplay:
    def test_healthy_artifact_passes(self, artifact):
        path, _manifest = artifact
        engine = InferenceEngine(path)
        assert engine.guardrail_status == "passed"
        assert engine.guardrail_report["bit_identical"] is True
        assert engine.stats()["guardrail"] == "passed"

    def test_tampered_logits_refuse_to_serve(self, artifact, tmp_path):
        path, _manifest = artifact

        def corrupt(manifest):
            manifest["guardrail"]["logits"][0][0] += 1e-9

        bad = rewrite_manifest(path, str(tmp_path / "bad.rpak"), corrupt)
        with pytest.raises(GuardrailError, match="not bit-identical"):
            InferenceEngine(bad)

    def test_accuracy_drift_refuses_to_serve(self, artifact, tmp_path):
        """Logits intact but the recorded accuracy unreachable: refused."""
        path, _manifest = artifact

        def inflate(manifest):
            manifest["guardrail"]["reference_accuracy"] = 1.0
            # Make every recorded label wrong relative to the logits, so the
            # replayed accuracy is 0.0 while bit-identity still holds.
            logits = np.asarray(manifest["guardrail"]["logits"])
            num_classes = logits.shape[1]
            manifest["guardrail"]["labels"] = [
                int((np.argmax(row) + 1) % num_classes) for row in logits]

        bad = rewrite_manifest(path, str(tmp_path / "drift.rpak"), inflate)
        with pytest.raises(GuardrailError, match="accuracy"):
            InferenceEngine(bad)

    def test_tolerance_absorbs_small_drift(self, artifact, tmp_path):
        path, _manifest = artifact

        def loosen(manifest):
            block = manifest["guardrail"]
            logits = np.asarray(block["logits"])
            num_classes = logits.shape[1]
            # One wrong label out of 16 shifts accuracy by 1/16 = 0.0625.
            block["labels"] = ([int((np.argmax(logits[0]) + 1) % num_classes)]
                               + [int(np.argmax(row)) for row in logits[1:]])
            block["reference_accuracy"] = 1.0
            block["tolerance"] = 0.1

        ok = rewrite_manifest(path, str(tmp_path / "loose.rpak"), loosen)
        engine = InferenceEngine(ok)
        assert engine.guardrail_status == "passed"

    def test_verify_false_skips_replay(self, artifact, tmp_path):
        path, _manifest = artifact

        def corrupt(manifest):
            manifest["guardrail"]["logits"][0][0] += 1.0

        bad = rewrite_manifest(path, str(tmp_path / "skip.rpak"), corrupt)
        engine = InferenceEngine(bad, verify_guardrail=False)
        assert engine.guardrail_status == "skipped"
        # Running it explicitly still refuses.
        with pytest.raises(GuardrailError):
            engine.run_guardrail()
        assert engine.guardrail_status == "failed"

    def test_activation_quant_mismatch_skips_not_refuses(self, artifact):
        path, _manifest = artifact
        engine = InferenceEngine(path, quantize_activations=False)
        assert engine.guardrail_status == "skipped"

    def test_pre_v11_artifact_without_block_still_serves(self, artifact,
                                                         tmp_path):
        path, _manifest = artifact

        def strip(manifest):
            del manifest["guardrail"]
            manifest["version_minor"] = 0

        old = rewrite_manifest(path, str(tmp_path / "v10.rpak"), strip)
        engine = InferenceEngine(old)
        assert engine.guardrail_status == "absent"


# --------------------------------------------------------------------- #
# Mixed-precision artifacts: the guardrail is the last line of defense
# --------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def mixed_artifact(tmp_path_factory):
    """A v2 export with three distinct per-tensor formats."""
    path = tmp_path_factory.mktemp("mixed_guardrail") / "mixed.rpak"
    manifest, _history = train_and_export(
        small_config(name="mixed_guardrail"), path,
        format_map={"body.0.weight": "posit(6,1)",
                    "body.2.bias": "posit(16,1)"})
    return str(path), manifest


class TestMixedPrecisionGuardrail:
    def test_export_is_mixed_and_records_tensor_formats(self, mixed_artifact):
        _path, manifest = mixed_artifact
        specs = {t["name"]: t["format"] for t in manifest["tensors"]
                 if t["kind"] == "param"}
        assert specs["body.0.weight"] == "posit(6,1)"
        assert specs["body.2.bias"] == "posit(16,1)"
        assert len(set(specs.values())) >= 3
        assert manifest["guardrail"]["tensor_formats"] == specs

    def test_healthy_mixed_artifact_serves(self, mixed_artifact):
        path, _manifest = mixed_artifact
        engine = InferenceEngine(path)
        assert engine.guardrail_status == "passed"
        assert engine.mixed_precision is True

    @pytest.fixture()
    def drifted(self, mixed_artifact, tmp_path):
        """The low-width tensor's segment inverted, **checksums fixed up**:
        load-time integrity passes, only the guardrail replay can object."""
        path, _manifest = mixed_artifact
        bad = rewrite_segment(
            path, str(tmp_path / "drifted.rpak"), "body.0.weight",
            lambda segment: bytes(byte ^ 0xFF for byte in segment))
        # The tampering is invisible to every load-time integrity check...
        artifact_info(bad)
        return bad

    def test_engine_refuses_corrupted_low_width_segment(self, drifted):
        with pytest.raises(GuardrailError, match="not bit-identical"):
            InferenceEngine(drifted)

    def test_cluster_refuses_corrupted_low_width_segment(self, drifted):
        with pytest.raises(GuardrailError, match="refused"):
            ServeCluster(drifted, ClusterConfig(workers=2)).start()

    def test_cli_serve_exits_3_on_corrupted_mixed_artifact(self, drifted,
                                                           capsys):
        assert cli_main(["serve", drifted]) == 3
        assert "refusing to serve" in capsys.readouterr().err

    def test_tensor_format_drift_refused_before_replay(self, mixed_artifact,
                                                       tmp_path):
        """A manifest whose recorded per-tensor specs disagree with the
        tensor table is refused by the spec check itself — no replay
        needed, and the error names the drifted tensor."""
        path, _manifest = mixed_artifact

        def drift(manifest):
            manifest["guardrail"]["tensor_formats"]["body.0.weight"] = \
                "posit(6,0)"

        bad = rewrite_manifest(path, str(tmp_path / "specs.rpak"), drift)
        with pytest.raises(GuardrailError,
                           match="format specs drifted.*body.0.weight"):
            InferenceEngine(bad)

    def test_cluster_degrades_when_restart_hits_drifted_artifact(
            self, mixed_artifact, drifted, tmp_path):
        """Kill a worker after the artifact on disk has been corrupted: the
        restarted process replays the guardrail against the drifted file,
        refuses to start, and ``/healthz`` degrades instead of serving
        wrong answers."""
        path, _manifest = mixed_artifact
        serving_copy = str(tmp_path / "serving.rpak")
        shutil.copyfile(path, serving_copy)
        cluster = ServeCluster(serving_copy,
                               ClusterConfig(workers=2, max_restarts=1))
        with cluster:
            assert cluster.healthz()["status"] == "ok"
            # Swap the file under the cluster, then kill one worker.
            shutil.copyfile(drifted, serving_copy)
            os.kill(cluster._handles[0].pid, signal.SIGKILL)
            deadline = time.time() + 60
            while time.time() < deadline:
                health = cluster.healthz()
                if (health["status"] == "degraded"
                        and "failed" in health["worker_states"]):
                    break
                time.sleep(0.1)
            assert health["status"] == "degraded", health
            assert "failed" in health["worker_states"], health
            # The survivor keeps serving the pre-drift weights.
            sample = np.zeros(2)
            assert "logits" in cluster.predict([sample])


# --------------------------------------------------------------------- #
# CLI wiring
# --------------------------------------------------------------------- #
class TestGuardrailCLI:
    def test_cli_export_embeds_and_reports_guardrail(self, tmp_path, capsys):
        config_path = tmp_path / "exp.json"
        config_path.write_text(json.dumps(small_config().to_dict()))
        out = tmp_path / "model.rpak"
        code = cli_main(["export", "--config", str(config_path),
                         "--output", str(out), "--guardrail-samples", "8",
                         "--guardrail-tolerance", "0.25"])
        assert code == 0
        assert "guardrail: 8 held-out samples" in capsys.readouterr().out
        block = artifact_info(out)["guardrail"]
        assert block["samples"] == 8
        assert block["tolerance"] == 0.25

    def test_cli_export_no_guardrail(self, tmp_path, capsys):
        config_path = tmp_path / "exp.json"
        config_path.write_text(json.dumps(small_config().to_dict()))
        out = tmp_path / "model.rpak"
        assert cli_main(["export", "--config", str(config_path),
                         "--output", str(out), "--no-guardrail"]) == 0
        assert "guardrail" not in artifact_info(out)

    def test_cli_serve_refuses_corrupted_guardrail(self, artifact, tmp_path,
                                                   capsys):
        path, _manifest = artifact

        def corrupt(manifest):
            manifest["guardrail"]["logits"][0][0] += 1.0

        bad = rewrite_manifest(path, str(tmp_path / "bad.rpak"), corrupt)
        code = cli_main(["serve", bad])
        assert code == 3
        assert "refusing to serve" in capsys.readouterr().err
