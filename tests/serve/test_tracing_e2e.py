"""End-to-end request tracing through the serving stack (:mod:`repro.obs`).

The acceptance path for the observability layer: a single ``/predict``
through a 2-worker cluster must produce **one** trace covering admission
→ queue → batch assembly → codec → forward → respond with consistent
parent/child nesting, exportable as valid Chrome trace-event JSON; a
SIGKILL'd worker's transparent failover must land both dispatch attempts
in the *same* client trace; and ``sample_rate=0`` must record nothing.
"""

import json
import os
import signal
import time

import numpy as np
import pytest

from repro.api import ExperimentConfig
from repro.obs import (
    TRACE_HEADER,
    TraceConfig,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.serve import (
    BatchingConfig,
    ClusterConfig,
    ClusterServer,
    HTTPClient,
    InferenceEngine,
    LocalClient,
    ModelServer,
    ServeCluster,
    train_and_export,
)

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")

#: Engine-side stage spans every traced request must produce.
ENGINE_STAGES = {"engine", "admission", "queue", "batch", "forward", "respond"}


def small_config(**overrides) -> ExperimentConfig:
    base = dict(name="tracing_test", dataset="blobs", model="mlp",
                policy="posit(8,1)", epochs=1, train_size=64, test_size=32,
                batch_size=16, num_classes=3, model_kwargs={"hidden": [16]})
    base.update(overrides)
    return ExperimentConfig(**base)


@pytest.fixture(scope="module")
def artifact(tmp_path_factory):
    path = tmp_path_factory.mktemp("tracing") / "model.rpak"
    train_and_export(small_config(), path)
    return str(path)


@pytest.fixture
def samples():
    return np.random.default_rng(11).normal(size=(8, 2))


def traced_batching():
    return BatchingConfig(max_batch=16, max_wait_ms=2.0)


# --------------------------------------------------------------------- #
# Single engine
# --------------------------------------------------------------------- #
class TestEngineTracing:
    def test_stages_and_nesting(self, artifact, samples):
        with InferenceEngine(artifact, traced_batching(),
                             tracing=TraceConfig(enabled=True)) as engine:
            engine.predict(samples[0])
            traces = engine.tracer.traces()
        assert len(traces) == 1
        (members,) = traces.values()
        names = {s.name for s in members}
        assert ENGINE_STAGES <= names
        assert "codec" in names
        by_id = {s.span_id: s for s in members}
        root = next(s for s in members if s.parent_id is None)
        assert root.name == "engine"
        for span in members:
            if span.parent_id is not None:
                assert span.parent_id in by_id
        codec = next(s for s in members if s.name == "codec")
        forward = by_id[codec.parent_id]
        assert forward.name == "forward"
        # Stage intervals nest inside the root interval.
        for span in members:
            assert span.start_s >= root.start_s - 1e-6
            assert span.end_s <= root.end_s + 1e-6

    def test_disabled_is_default_and_silent(self, artifact, samples):
        with InferenceEngine(artifact, traced_batching()) as engine:
            engine.predict(samples[0])
            assert engine.tracer.enabled is False
            assert engine.tracer.spans() == []
            stats = engine.stats()
        assert stats["tracing"]["spans_total"] == 0
        assert "codec_profile" not in stats

    def test_sample_rate_zero_records_nothing(self, artifact, samples):
        config = TraceConfig(enabled=True, sample_rate=0.0)
        with InferenceEngine(artifact, traced_batching(),
                             tracing=config) as engine:
            for sample in samples:
                engine.predict(sample)
            summary = engine.tracer.summary()
        assert summary["spans_total"] == 0
        assert summary["dropped_unsampled"] >= len(samples)

    def test_codec_profile_in_stats(self, artifact, samples):
        with InferenceEngine(artifact, traced_batching(),
                             tracing=TraceConfig(enabled=True)) as engine:
            engine.predict(samples[0])
            stats = engine.stats()
        profile = stats["codec_profile"]
        assert profile["total_ns"] > 0
        # Weight decode at load time plus activation quantization at
        # forward time both land in the per-format scoreboard.
        ops = {op for fmt in profile["formats"].values() for op in fmt}
        assert "from_bits" in ops
        assert "quantize" in ops

    def test_slow_exemplars(self, artifact, samples):
        config = TraceConfig(enabled=True, slow_ms=0.0, slow_keep=4)
        with InferenceEngine(artifact, traced_batching(),
                             tracing=config) as engine:
            engine.predict(samples[0])
            slow = engine.tracer.slow_traces()
        assert len(slow) == 1
        assert slow[0]["duration_ms"] > 0


# --------------------------------------------------------------------- #
# Transports
# --------------------------------------------------------------------- #
class TestTransportTracing:
    def test_local_client_echoes_trace_id(self, artifact, samples):
        with InferenceEngine(artifact, traced_batching(),
                             tracing=TraceConfig(enabled=True)) as engine:
            client = LocalClient(engine)
            response = client.predict([samples[0]])
            assert "trace_id" in response
            own = client.predict([samples[1]], trace_id="f" * 32)
            assert own["trace_id"] == "f" * 32
            traces = client.traces()
            assert traces["tracing"]["enabled"] is True
            ids = {span["trace_id"] for span in traces["spans"]}
            assert "f" * 32 in ids

    def test_http_header_round_trip(self, artifact, samples):
        engine = InferenceEngine(artifact, traced_batching(),
                                 tracing=TraceConfig(enabled=True))
        with ModelServer(engine) as server:
            client = HTTPClient(server.url)
            supplied = "a" * 32
            response = client.predict([samples[0]], trace_id=supplied)
            assert response["trace_id"] == supplied
            # The raw header is echoed too (the client parses the body,
            # so check via urllib directly).
            import urllib.request

            request = urllib.request.Request(
                server.url + "/predict",
                data=json.dumps(
                    {"inputs": [samples[0].tolist()]}).encode(),
                headers={"Content-Type": "application/json",
                         TRACE_HEADER: "b" * 32})
            with urllib.request.urlopen(request, timeout=30) as reply:
                assert reply.headers[TRACE_HEADER] == "b" * 32
            traces = client.traces()
            assert {"a" * 32, "b" * 32} <= {
                span["trace_id"] for span in traces["spans"]}

    def test_untraced_response_has_no_trace_id(self, artifact, samples):
        with InferenceEngine(artifact, traced_batching()) as engine:
            response = LocalClient(engine).predict([samples[0]])
        assert "trace_id" not in response


# --------------------------------------------------------------------- #
# Cluster: one request, one cross-process trace
# --------------------------------------------------------------------- #
class TestClusterTracing:
    def test_single_predict_single_complete_trace(self, artifact, samples,
                                                  tmp_path):
        with ServeCluster(artifact, ClusterConfig(workers=2),
                          batching=traced_batching(),
                          tracing=TraceConfig(enabled=True)) as cluster:
            response = cluster.predict([samples[0]])
            trace_id = response["trace_id"]
            spans = cluster.tracer.spans(trace_id)

        names = {s.name for s in spans}
        assert {"request", "dispatch"} | ENGINE_STAGES <= names
        assert len({s.trace_id for s in spans}) == 1

        # Parent/child nesting is consistent across the process boundary:
        # every non-root span's parent exists, and the chain request →
        # dispatch → engine → forward → codec resolves.
        by_id = {s.span_id: s for s in spans}
        assert len(by_id) == len(spans), "span ids must be unique"
        root = next(s for s in spans if s.parent_id is None)
        assert root.name == "request"
        for span in spans:
            if span.parent_id is not None:
                assert span.parent_id in by_id, f"orphan span {span.name}"
        engine_span = next(s for s in spans if s.name == "engine")
        dispatch = by_id[engine_span.parent_id]
        assert dispatch.name == "dispatch"
        assert by_id[dispatch.parent_id] is root
        # The worker recorded its stages in its own process.
        assert engine_span.pid != root.pid

        # ... and the whole thing exports as a valid Chrome trace.
        doc = write_chrome_trace(spans, str(tmp_path / "trace.json"))
        assert validate_chrome_trace(doc) == []
        with open(tmp_path / "trace.json", "r", encoding="utf-8") as fh:
            assert validate_chrome_trace(json.load(fh)) == []

    def test_failover_lands_both_attempts_in_one_trace(self, artifact,
                                                       samples):
        with ServeCluster(artifact,
                          ClusterConfig(workers=2, max_restarts=0),
                          batching=traced_batching(),
                          tracing=TraceConfig(enabled=True)) as cluster:
            victim = cluster._handles[0]
            os.kill(victim.pid, signal.SIGKILL)
            # Round-robin reaches the dead worker within a couple of
            # requests; the transparent retry then shows up as a second
            # dispatch span in the same trace.
            retried = None
            deadline = time.monotonic() + 30.0
            while retried is None and time.monotonic() < deadline:
                response = cluster.predict([samples[0]])
                spans = cluster.tracer.spans(response["trace_id"])
                dispatches = sorted(
                    (s for s in spans if s.name == "dispatch"),
                    key=lambda s: s.annotations["attempt"])
                if len(dispatches) == 2:
                    retried = (response, spans, dispatches)
            assert retried is not None, "failover retry never observed"
            response, spans, dispatches = retried

            first, second = dispatches
            assert first.annotations["retry"] is False
            assert "error" in first.annotations
            assert second.annotations["retry"] is True
            assert "error" not in second.annotations
            assert first.annotations["worker"] != second.annotations["worker"]
            # One trace end to end: the client still got an answer, and
            # the engine stages ran under the *second* dispatch.
            assert len(response["predictions"]) == 1
            assert len([s for s in spans if s.parent_id is None]) == 1
            engine_span = next(s for s in spans if s.name == "engine")
            assert engine_span.parent_id == second.span_id

    def test_sample_rate_zero_cluster_is_silent(self, artifact, samples):
        config = TraceConfig(enabled=True, sample_rate=0.0)
        with ServeCluster(artifact, ClusterConfig(workers=2),
                          batching=traced_batching(),
                          tracing=config) as cluster:
            for sample in samples:
                response = cluster.predict([sample])
                assert "trace_id" not in response
            assert cluster.tracer.spans() == []
            # The workers did not record either: their engines saw the
            # explicit unsampled context, not an absent one.
            stats = cluster.stats()
            for worker_stats in stats["per_worker"]:
                assert worker_stats["tracing"]["spans_total"] == 0

    def test_cluster_server_traces_endpoint(self, artifact, samples):
        cluster = ServeCluster(artifact, ClusterConfig(workers=2),
                               batching=traced_batching(),
                               tracing=TraceConfig(enabled=True))
        with ClusterServer(cluster) as server:
            client = HTTPClient(server.url)
            response = client.predict([samples[0]])
            trace_id = response["trace_id"]
            payload = client.traces()
            ids = {span["trace_id"] for span in payload["spans"]}
            assert trace_id in ids
            doc = to_chrome_trace(payload["spans"])
            assert validate_chrome_trace(doc) == []
