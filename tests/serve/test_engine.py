"""Tests for the micro-batching inference engine."""

import threading

import numpy as np
import pytest

from repro.api import ExperimentConfig
from repro.serve import BatchingConfig, InferenceEngine, train_and_export


@pytest.fixture(scope="module")
def artifact(tmp_path_factory):
    path = tmp_path_factory.mktemp("engine") / "model.rpak"
    config = ExperimentConfig(
        name="engine_test", dataset="blobs", model="mlp", policy="posit(8,1)",
        epochs=1, train_size=64, test_size=32, batch_size=16, num_classes=3,
        model_kwargs={"hidden": [16, 8]})
    train_and_export(config, path)
    return str(path)


@pytest.fixture
def samples():
    return np.random.default_rng(11).normal(size=(48, 2))


def test_batched_equals_single_sample(artifact, samples):
    """The acceptance invariant: batching must not change the numerics."""
    with InferenceEngine(artifact, BatchingConfig(max_batch=16,
                                                  max_wait_ms=20.0)) as engine:
        direct = engine.predict_batch(samples)
        # All submitted at once -> coalesced into a few large batches.
        futures = [engine.submit(sample) for sample in samples]
        coalesced = np.stack([future.result(10.0) for future in futures])
        # One at a time -> batches of exactly one.
        singles = np.stack([engine.predict(sample) for sample in samples[:8]])
    assert np.array_equal(direct, coalesced)
    assert np.array_equal(direct[:8], singles)


def test_concurrent_clients_coalesce(artifact, samples):
    """64 threads submitting simultaneously: coalescing happens, results exact."""
    engine = InferenceEngine(artifact, BatchingConfig(max_batch=32,
                                                      max_wait_ms=25.0))
    results: dict[int, np.ndarray] = {}
    errors: list[Exception] = []
    barrier = threading.Barrier(64)

    def _client(index: int) -> None:
        sample = samples[index % len(samples)]
        barrier.wait()
        try:
            results[index] = engine.predict(sample, timeout=30.0)
        except Exception as exc:  # noqa: BLE001
            errors.append(exc)

    with engine:
        threads = [threading.Thread(target=_client, args=(i,)) for i in range(64)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stats = engine.stats()
        reference = engine.predict_batch(samples)
    assert not errors
    assert len(results) == 64
    for index, logits in results.items():
        assert np.array_equal(logits, reference[index % len(samples)])
    # 64 concurrent requests must not run as 64 singleton batches.
    assert stats["requests"] == 64
    assert stats["batches"] < 64
    assert stats["mean_batch_size"] > 1.5
    assert stats["max_batch_seen"] <= 32


def test_max_batch_one_disables_coalescing(artifact, samples):
    with InferenceEngine(artifact, BatchingConfig(max_batch=1,
                                                  max_wait_ms=0.0)) as engine:
        futures = [engine.submit(sample) for sample in samples[:10]]
        for future in futures:
            future.result(10.0)
        assert engine.stats()["max_batch_seen"] == 1
        assert engine.stats()["batches"] == 10


def test_stats_accounting(artifact, samples):
    with InferenceEngine(artifact, BatchingConfig(max_batch=8,
                                                  max_wait_ms=10.0)) as engine:
        futures = [engine.submit(sample) for sample in samples[:16]]
        for future in futures:
            future.result(10.0)
        stats = engine.stats()
    assert stats["requests"] == 16
    assert stats["energy_uj_per_sample"] > 0
    # Compute energy per sample, memory energy per coalesced batch — so the
    # total is strictly below 16 unbatched single-sample passes whenever
    # any coalescing happened.
    assert stats["energy_uj_total"] == pytest.approx(
        16 * stats["energy_uj_compute_per_sample"]
        + stats["batches"] * stats["energy_uj_memory_per_batch"])
    if stats["batches"] < 16:
        assert stats["energy_uj_total"] < 16 * stats["energy_uj_per_sample"]
    assert stats["energy_uj_per_request_observed"] == pytest.approx(
        stats["energy_uj_total"] / 16)
    assert stats["latency_p99_ms"] >= stats["latency_p50_ms"] > 0
    assert stats["format"] == "posit(8,1)"


def test_submit_requires_started_engine(artifact):
    engine = InferenceEngine(artifact)
    with pytest.raises(RuntimeError, match="not started"):
        engine.submit(np.zeros(2))


def test_bad_input_shape_rejected_at_admission(artifact):
    """A malformed sample fails its own request, never its batch-mates."""
    with InferenceEngine(artifact, BatchingConfig(max_batch=4,
                                                  max_wait_ms=1.0)) as engine:
        with pytest.raises(ValueError, match="input shape"):
            engine.submit(np.zeros(7))  # MLP expects 2 features
        # The engine keeps serving after the rejection.
        good = engine.predict(np.zeros(2), timeout=10.0)
    assert good.shape == (3,)


def test_poisoned_batch_isolates_offender(tmp_path):
    """Without a manifest input shape, a bad sample in a coalesced batch
    fails alone while its batch-mates still get answers."""
    from repro.models import MLP
    from repro.serve import save_model

    model = MLP(2, hidden=(4,), num_classes=3, rng=np.random.default_rng(0))
    path = tmp_path / "bare.rpak"
    save_model(model, path, fmt="posit(8,1)",
               model_info={"model": "mlp", "model_kwargs": {"hidden": [4]},
                           "num_classes": 3, "in_features": 2, "seed": 0})
    with InferenceEngine(path, BatchingConfig(max_batch=8,
                                              max_wait_ms=50.0)) as engine:
        assert engine._input_shape is None  # nothing to validate against
        good_futures = [engine.submit(np.zeros(2)) for _ in range(3)]
        bad_future = engine.submit(np.zeros(7))
        for future in good_futures:
            assert future.result(10.0).shape == (3,)
        with pytest.raises(Exception):
            bad_future.result(10.0)


def test_unquantized_activations_option(artifact, samples):
    quantized = InferenceEngine(artifact, quantize_activations=True)
    plain = InferenceEngine(artifact, quantize_activations=False)
    a = quantized.predict_batch(samples[:4])
    b = plain.predict_batch(samples[:4])
    # Same decoded weights, different activation paths: logits differ in
    # general but classify mostly alike on this easy task.
    assert a.shape == b.shape


def test_engine_restart(artifact, samples):
    engine = InferenceEngine(artifact)
    with engine:
        first = engine.predict(samples[0])
    with engine:
        second = engine.predict(samples[0])
    assert np.array_equal(first, second)
