"""Cross-version golden-artifact compatibility suite.

``fixtures/*.rpak`` are frozen artifacts written by the artifact writer of
the repo revision that introduced each format version (v1.0 by the PR-3
writer, v1.1 by the PR-4 writer, v2.0 by the PR-5 writer).  This suite pins
that the *current* reader loads every one of them exactly as recorded in
``fixtures/expected/*.json``:

* the fixture file itself is byte-identical to what was committed;
* every decoded tensor is byte-identical (SHA-256 over the float64 bytes);
* ``artifact_info`` returns the identical manifest;
* serving-stack behaviours survive (the v1.1 guardrail replay still
  passes, the v2.0 mixed artifact still reports three formats);
* ``fixtures/regenerate.py`` reproduces every fixture byte for byte, so
  the legacy writer paths cannot drift and the matrix can be *extended*
  (new ``build_vX_*`` entries) without breaking the old rows.

If one of these tests fails after a refactor, the artifact contract broke:
old artifacts in the field would decode differently (or not at all) on the
new code.  Do not regenerate the fixtures to make it pass — fix the reader.
"""

import hashlib
import importlib.util
import json
import os

import numpy as np
import pytest

from repro.serve import InferenceEngine, artifact_info, load_state

FIXTURE_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "fixtures")
EXPECTED_DIR = os.path.join(FIXTURE_DIR, "expected")

#: Every format version ever shipped must stay represented.
REQUIRED_FIXTURES = ("v1_0_posit8", "v1_0_fixed16", "v1_1_posit8_guardrail",
                     "v2_0_mixed")


def fixture_names():
    return sorted(os.path.splitext(name)[0]
                  for name in os.listdir(FIXTURE_DIR)
                  if name.endswith(".rpak"))


def fixture_path(name: str) -> str:
    return os.path.join(FIXTURE_DIR, f"{name}.rpak")


def expected_document(name: str) -> dict:
    with open(os.path.join(EXPECTED_DIR, f"{name}.json"),
              encoding="utf-8") as handle:
        return json.load(handle)


def _load_regenerate_module():
    spec = importlib.util.spec_from_file_location(
        "golden_regenerate", os.path.join(FIXTURE_DIR, "regenerate.py"))
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_matrix_covers_every_shipped_version():
    names = fixture_names()
    for required in REQUIRED_FIXTURES:
        assert required in names, f"fixture {required} missing"
    for name in names:
        assert os.path.exists(os.path.join(EXPECTED_DIR, f"{name}.json")), (
            f"fixture {name} has no expected/{name}.json")


@pytest.mark.parametrize("name", fixture_names())
def test_fixture_file_is_byte_identical_to_committed(name):
    """The committed bytes themselves are the contract (regen drift check)."""
    with open(fixture_path(name), "rb") as handle:
        digest = hashlib.sha256(handle.read()).hexdigest()
    assert digest == expected_document(name)["file_sha256"]


@pytest.mark.parametrize("name", fixture_names())
def test_decoded_state_is_byte_identical(name):
    expected = expected_document(name)["state_sha256"]
    state, _manifest = load_state(fixture_path(name))
    assert sorted(state) == sorted(expected)
    for tensor_name, array in state.items():
        digest = hashlib.sha256(
            np.ascontiguousarray(array, dtype=np.float64).tobytes()
        ).hexdigest()
        assert digest == expected[tensor_name], (
            f"{name}: tensor {tensor_name} decoded differently than the "
            f"version that wrote it")


@pytest.mark.parametrize("name", fixture_names())
def test_artifact_info_is_identical(name):
    assert artifact_info(fixture_path(name)) == (
        expected_document(name)["artifact_info"])


def test_v1_0_has_no_minor_version_and_loads(name="v1_0_posit8"):
    manifest = artifact_info(fixture_path(name))
    assert manifest["version"] == 1
    assert "version_minor" not in manifest
    engine = InferenceEngine(fixture_path(name))
    assert engine.guardrail_status == "absent"
    assert engine.mixed_precision is False


def test_v1_1_guardrail_replay_still_passes():
    """The strongest compatibility claim: a v1.1 artifact's recorded logits
    are still reproduced bit for bit by today's serving stack."""
    engine = InferenceEngine(fixture_path("v1_1_posit8_guardrail"))
    assert engine.guardrail_status == "passed"
    assert engine.guardrail_report["bit_identical"] is True


def test_v2_0_mixed_reports_three_formats():
    manifest = artifact_info(fixture_path("v2_0_mixed"))
    param_specs = {entry["format"] for entry in manifest["tensors"]
                   if entry["kind"] == "param"}
    assert len(param_specs) >= 3
    engine = InferenceEngine(fixture_path("v2_0_mixed"))
    assert engine.mixed_precision is True
    assert set(engine.stats()["formats"]) >= param_specs


def test_regeneration_reproduces_committed_bytes(tmp_path):
    """``regenerate.py`` into a clean directory == the committed fixtures.

    This is what keeps the legacy writer paths honest: if
    ``save_model(..., version=1)`` (or any helper the builders use) drifts,
    the regenerated bytes diverge from the committed ones and this test
    names the fixture.
    """
    module = _load_regenerate_module()
    statuses = module.regenerate(str(tmp_path))
    assert set(statuses) == set(module.FIXTURES)
    for name, status in statuses.items():
        assert status == "created", (name, status)
        with open(os.path.join(str(tmp_path), f"{name}.rpak"), "rb") as handle:
            regenerated = handle.read()
        with open(fixture_path(name), "rb") as handle:
            committed = handle.read()
        assert regenerated == committed, (
            f"regenerating {name} produced different bytes than the "
            f"committed fixture — a legacy writer path drifted")
        with open(os.path.join(str(tmp_path), "expected",
                               f"{name}.json"), encoding="utf-8") as handle:
            assert json.load(handle) == expected_document(name), name
