"""Shared artifact-manipulation helpers for serve tests and CI smokes."""

import hashlib
import json
import struct

#: RPAK header: magic(4) + version(1) + manifest length prefix (u32 LE).
_MAGIC_LEN = 4
_HEADER_LEN = _MAGIC_LEN + 1 + 4


def rewrite_manifest(path: str, out_path: str, mutate) -> str:
    """Copy an artifact with its JSON manifest passed through ``mutate``.

    The one sanctioned way to build corrupted/tampered artifacts in tests
    (and the CI smoke scripts, which import this module by path): parses
    the real header, mutates the decoded manifest in place, and re-writes
    the length prefix — so a change to the RPAK layout breaks exactly one
    helper instead of silently diverging copies.
    """
    with open(path, "rb") as handle:
        data = handle.read()
    (manifest_len,) = struct.unpack_from("<I", data, _MAGIC_LEN + 1)
    manifest = json.loads(data[_HEADER_LEN:_HEADER_LEN + manifest_len])
    mutate(manifest)
    manifest_bytes = json.dumps(manifest, sort_keys=True).encode("utf-8")
    with open(out_path, "wb") as handle:
        handle.write(data[:_MAGIC_LEN + 1])
        handle.write(struct.pack("<I", len(manifest_bytes)))
        handle.write(manifest_bytes)
        handle.write(data[_HEADER_LEN + manifest_len:])
    return str(out_path)


def rewrite_segment(path: str, out_path: str, tensor_name: str,
                    mutate) -> str:
    """Copy an artifact with one tensor's packed segment passed through
    ``mutate`` (``bytes -> bytes``, same length), **re-deriving every
    checksum** — the per-segment SHA-256 (v2) and the monolithic blob
    SHA-256 (v1) — so the tampered file still passes integrity validation.

    This is how tests build "drifted weights" artifacts: the corruption the
    load-time checksums can no longer catch, leaving the startup guardrail
    replay as the last line of defense.
    """
    with open(path, "rb") as handle:
        data = handle.read()
    (manifest_len,) = struct.unpack_from("<I", data, _MAGIC_LEN + 1)
    manifest = json.loads(data[_HEADER_LEN:_HEADER_LEN + manifest_len])
    blob = bytearray(data[_HEADER_LEN + manifest_len:])
    entry = next(e for e in manifest["tensors"] if e["name"] == tensor_name)
    start, end = entry["offset"], entry["offset"] + entry["nbytes"]
    segment = mutate(bytes(blob[start:end]))
    if len(segment) != entry["nbytes"]:
        raise ValueError(
            f"mutate changed the segment length ({entry['nbytes']} -> "
            f"{len(segment)}); segments are fixed-size")
    blob[start:end] = segment
    if "sha256" in entry:
        entry["sha256"] = hashlib.sha256(segment).hexdigest()
    if "blob_sha256" in manifest:
        manifest["blob_sha256"] = hashlib.sha256(bytes(blob)).hexdigest()
    manifest_bytes = json.dumps(manifest, sort_keys=True).encode("utf-8")
    with open(out_path, "wb") as handle:
        handle.write(data[:_MAGIC_LEN + 1])
        handle.write(struct.pack("<I", len(manifest_bytes)))
        handle.write(manifest_bytes)
        handle.write(blob)
    return str(out_path)
