"""Admission control end to end: 429 + Retry-After instead of failures.

Overflowing the engine's bounded admission queue must surface as typed
backpressure — :class:`AdmissionError` in process, HTTP **429** with a
``Retry-After`` header through the transport, ``overloaded`` on
``/healthz`` — never a 500, and never a dropped in-flight request.  The
tests pin the whole path deterministically by parking the engine's forward
pass on an event while the queue fills, plus the load generator's
rejected-vs-failed accounting and the cluster's zero-drop scale up/down.
"""

import json
import threading
import time

import numpy as np
import pytest

from repro.api import ExperimentConfig
from repro.cli import main
from repro.serve import (
    AdmissionError,
    BatchingConfig,
    ClusterConfig,
    HTTPClient,
    InferenceEngine,
    LocalClient,
    ModelServer,
    ServeClientError,
    ServeCluster,
    run_load,
    train_and_export,
)

SAMPLE = np.zeros(2)


def small_config(**overrides) -> ExperimentConfig:
    base = dict(name="backpressure_test", dataset="blobs", model="mlp",
                policy="posit(8,1)", epochs=1, train_size=64, test_size=32,
                batch_size=16, num_classes=3, model_kwargs={"hidden": [16]})
    base.update(overrides)
    return ExperimentConfig(**base)


@pytest.fixture(scope="module")
def artifact(tmp_path_factory):
    path = tmp_path_factory.mktemp("backpressure") / "model.rpak"
    train_and_export(small_config(), path)
    return str(path)


class _ParkedEngine:
    """An engine whose forward pass is parked on an event.

    With ``max_batch=1`` the batch loop takes exactly one request into the
    forward pass and parks; everything submitted after that sits in the
    bounded queue — so overflow is reached deterministically, no timing.
    """

    def __init__(self, artifact: str, queue_size: int = 2):
        self.engine = InferenceEngine(
            artifact,
            BatchingConfig(max_batch=1, max_wait_ms=0.0,
                           queue_size=queue_size))
        self.release = threading.Event()
        original = self.engine._forward

        def parked(batch):
            self.release.wait(timeout=30.0)
            return original(batch)

        self.engine._forward = parked

    def __enter__(self) -> "_ParkedEngine":
        self.engine.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release.set()
        self.engine.stop()

    def fill(self) -> list:
        """One request into the parked forward, then fill the queue."""
        futures = [self.engine.submit(SAMPLE)]
        deadline = time.time() + 10.0
        while self.engine.queue_depth > 0:  # loop picked up the first one
            assert time.time() < deadline, "batch loop never took a request"
            time.sleep(0.005)
        for _ in range(self.engine.batching.queue_size):
            futures.append(self.engine.submit(SAMPLE))
        return futures


class TestEngineAdmission:
    def test_overflow_raises_admission_error_with_retry_hint(self, artifact):
        with _ParkedEngine(artifact) as parked:
            futures = parked.fill()
            with pytest.raises(AdmissionError) as excinfo:
                parked.engine.submit(SAMPLE)
            assert excinfo.value.retry_after_s > 0
            assert parked.engine.load_state() == "overloaded"
            stats = parked.engine.stats()
            assert stats["rejected"] == 1
            assert stats["load_state"] == "overloaded"
            parked.release.set()
            # Every admitted request still completes: rejection sheds *new*
            # load, it never cancels accepted work.
            for future in futures:
                assert future.result(timeout=30.0).shape == (3,)
        assert parked.engine.stats()["requests"] == len(futures)

    def test_admission_error_is_runtime_error(self, artifact):
        # Callers that predate the typed exception catch RuntimeError.
        assert issubclass(AdmissionError, RuntimeError)

    def test_recovers_to_ok_after_drain(self, artifact):
        with _ParkedEngine(artifact) as parked:
            futures = parked.fill()
            with pytest.raises(AdmissionError):
                parked.engine.submit(SAMPLE)
            parked.release.set()
            for future in futures:
                future.result(timeout=30.0)
            # "overloaded" persists while the reject is inside the 1 s
            # observation window, then the state heals.
            deadline = time.time() + 10.0
            while parked.engine.load_state() != "ok":
                assert time.time() < deadline, "load state never recovered"
                time.sleep(0.1)


class TestLocalClient429:
    def test_maps_admission_to_429(self, artifact):
        with _ParkedEngine(artifact) as parked:
            parked.fill()
            client = LocalClient(parked.engine)
            with pytest.raises(ServeClientError) as excinfo:
                client.predict([SAMPLE])
            assert excinfo.value.status == 429
            assert excinfo.value.retry_after > 0
            assert client.healthz()["status"] == "overloaded"
            assert "repro_serve_rejected_total 1" in client.metrics()


class TestHttp429:
    def test_429_with_retry_after_header_and_health_transitions(self, artifact):
        with _ParkedEngine(artifact) as parked:
            server = ModelServer(parked.engine, port=0)
            server.start()
            try:
                client = HTTPClient(server.url, timeout=30.0)
                parked.fill()
                with pytest.raises(ServeClientError) as excinfo:
                    client.predict([SAMPLE.tolist()])
                # 429, not 500 — and the Retry-After header round-tripped.
                assert excinfo.value.status == 429
                assert excinfo.value.retry_after is not None
                assert excinfo.value.retry_after >= 1.0  # integer seconds
                assert client.healthz()["status"] == "overloaded"
                exposition = client.metrics()
                assert "repro_serve_rejected_total 1" in exposition
                assert "repro_serve_arrivals_total" in exposition
                parked.release.set()
                deadline = time.time() + 10.0
                while client.healthz()["status"] != "ok":
                    assert time.time() < deadline
                    time.sleep(0.1)
            finally:
                server.stop()


class _ShedClient:
    """Stub transport client: rejects the first ``shed`` calls, then serves."""

    def __init__(self, shed: int, exc_factory):
        self.shed = shed
        self.exc_factory = exc_factory
        self.calls = 0

    def predict(self, samples):
        self.calls += 1
        if self.calls <= self.shed:
            raise self.exc_factory()
        return {"predictions": [0] * len(samples)}


class TestLoadgenAccounting:
    def test_429_tallied_as_rejected_not_failed(self):
        client = _ShedClient(3, lambda: ServeClientError(
            429, "queue full", retry_after=0.01))
        report = run_load(client, [SAMPLE], concurrency=1,
                          requests_per_client=8)
        assert report["rejected"] == 3
        assert report["failed"] == 0
        assert report["completed"] == 5
        assert report["retry_wait_seconds"] == pytest.approx(0.03)

    def test_raw_admission_error_counts_as_rejected(self):
        # The cluster is also driven directly as a client (no transport);
        # its rejections arrive as AdmissionError, not HTTP 429.
        client = _ShedClient(2, lambda: AdmissionError(
            "queue full", retry_after_s=0.01))
        report = run_load(client, [SAMPLE], concurrency=1,
                          requests_per_client=4)
        assert report["rejected"] == 2
        assert report["failed"] == 0

    def test_retry_after_is_capped(self):
        client = _ShedClient(1, lambda: ServeClientError(
            429, "queue full", retry_after=60.0))
        begin = time.perf_counter()
        report = run_load(client, [SAMPLE], concurrency=1,
                          requests_per_client=2, retry_after_cap_s=0.05)
        assert time.perf_counter() - begin < 5.0
        assert report["rejected"] == 1
        assert report["retry_wait_seconds"] == pytest.approx(0.05)

    def test_genuine_failures_still_fail(self):
        client = _ShedClient(1, lambda: ServeClientError(500, "boom"))
        report = run_load(client, [SAMPLE], concurrency=1,
                          requests_per_client=2)
        assert report["failed"] == 1
        assert report["rejected"] == 0


class TestClusterScaling:
    def test_scale_up_and_down_with_zero_inflight_drops(self, artifact):
        cluster = ServeCluster(
            artifact, ClusterConfig(workers=1),
            batching=BatchingConfig(max_batch=8, max_wait_ms=1.0))
        with cluster:
            errors: list[str] = []
            done = threading.Event()

            def pound():
                while not done.is_set():
                    try:
                        cluster.predict([SAMPLE])
                    except Exception as exc:  # noqa: BLE001 - recorded
                        errors.append(f"{type(exc).__name__}: {exc}")

            threads = [threading.Thread(target=pound, daemon=True)
                       for _ in range(4)]
            for thread in threads:
                thread.start()
            try:
                assert cluster.scale_to(2) == 1
                assert cluster.target_workers == 2
                deadline = time.time() + 30.0
                while cluster.healthz()["alive"] < 2:
                    assert time.time() < deadline, "scale-up never completed"
                    time.sleep(0.1)
                time.sleep(0.5)  # traffic across both workers
                assert cluster.scale_to(1) == -1
                assert cluster.target_workers == 1
                time.sleep(0.5)  # traffic across the retirement
            finally:
                done.set()
                for thread in threads:
                    thread.join(timeout=10.0)
            assert errors == []  # zero client-observed drops
            assert cluster.healthz()["status"] == "ok"
            stats = cluster.stats()
            assert stats["workers"] == 1
            # The cluster still answers after the dance.
            assert cluster.predict([SAMPLE])["predictions"][0] in (0, 1, 2)

    def test_scale_to_validates(self, artifact):
        cluster = ServeCluster(artifact, ClusterConfig(workers=1))
        with cluster:
            with pytest.raises(ValueError):
                cluster.scale_to(0)
            assert cluster.scale_to(1) == 0  # no-op

    def test_tuned_wait_broadcasts_and_sticks(self, artifact):
        cluster = ServeCluster(artifact, ClusterConfig(workers=1))
        with cluster:
            cluster.set_max_wait_ms(7.5)
            assert cluster.max_wait_ms == 7.5
            deadline = time.time() + 10.0
            while True:
                rows = cluster.worker_metrics()
                if rows and all(row["max_wait_ms"] == 7.5 for row in rows):
                    break
                assert time.time() < deadline, "control broadcast never landed"
                time.sleep(0.1)
            assert cluster.stats()["max_wait_ms"] == 7.5


class TestArtifactInspectCLI:
    def test_inspect_summary(self, artifact, capsys):
        assert main(["artifact", "inspect", artifact]) == 0
        out = capsys.readouterr().out
        assert "format=posit(8,1)" in out
        assert "guardrail: 16 held-out samples" in out

    def test_inspect_json_has_segments(self, artifact, capsys):
        assert main(["artifact", "inspect", artifact, "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["version"] == 2
        assert summary["tensors"] == 4
        assert {row["name"] for row in summary["segments"]} == {
            "body.0.weight", "body.0.bias", "body.2.weight", "body.2.bias"}
        assert all(row["nbytes"] > 0 for row in summary["segments"])
        assert summary["guardrail"]["samples"] == 16

    def test_inspect_missing_file_exits_2(self, capsys):
        assert main(["artifact", "inspect", "/nonexistent.rpak"]) == 2
