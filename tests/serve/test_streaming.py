"""Streaming-load tests: bounded peak memory and actionable truncation.

The v2 artifact layout exists so that ``load_state`` can decode one
checksummed segment at a time instead of materializing the whole packed
blob: peak *additional* allocation (beyond the decoded state itself) must
be bounded by the largest single tensor segment's decode footprint — the
property that lets a large model load on a machine with little headroom.
``tracemalloc`` sees NumPy's allocations, so the bound is measured, not
assumed.
"""

import os
import tracemalloc

import numpy as np
import pytest

from repro.models import MLP
from repro.serve import (
    ArtifactError,
    artifact_info,
    load_state,
    save_model,
    segment_table,
)

#: Many same-sized segments, so whole-blob residency would dwarf any single
#: segment: 64 hidden Linear layers of 128x128 @ fixed(16,13) pack ~32 KB
#: each (~2.1 MB blob) while one segment's decode scratch stays a few
#: hundred KB.
LAYER_WIDTH = 128
HIDDEN_LAYERS = 64


@pytest.fixture(scope="module")
def large_artifact(tmp_path_factory):
    path = tmp_path_factory.mktemp("streaming") / "large.rpak"
    model = MLP(LAYER_WIDTH, hidden=(LAYER_WIDTH,) * HIDDEN_LAYERS,
                num_classes=16, rng=np.random.default_rng(0))
    manifest = save_model(model, path, fmt="fixed(16,13)")
    return str(path), manifest


def test_peak_extra_memory_bounded_by_largest_segment(large_artifact):
    path, manifest = large_artifact
    blob_nbytes = manifest["blob_nbytes"]
    largest_segment = max(int(entry["nbytes"]) for entry in manifest["tensors"])
    assert blob_nbytes > 30 * largest_segment  # the premise: many segments

    tracemalloc.start()
    try:
        tracemalloc.reset_peak()
        state, _manifest = load_state(path)
        _current, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()

    decoded_nbytes = sum(array.nbytes for array in state.values())
    additional = peak - decoded_nbytes
    # The whole blob is never resident: scratch stays well under the blob
    # (the v1 monolithic reader necessarily exceeds this — it holds the
    # full blob on top of the decoded state)...
    assert additional < 0.6 * blob_nbytes, (
        f"streaming load used {additional} extra bytes against a "
        f"{blob_nbytes}-byte blob — looks like a whole-blob read")
    # ...and is proportional to ONE segment's decode footprint (packed
    # bytes + unpacked bit matrix + int64 codes + float64 values is a
    # generous ~30x the packed segment for 16-bit codes).
    assert additional < 30 * largest_segment, (
        f"{additional} extra bytes is not bounded by the largest "
        f"segment ({largest_segment} bytes)")


def test_v1_monolithic_load_exceeds_the_streaming_bound(tmp_path):
    """Sanity check of the measurement itself: the legacy v1 reader holds
    the entire blob, so its extra memory must blow past the blob bound the
    streaming reader honours."""
    path = tmp_path / "large_v1.rpak"
    model = MLP(LAYER_WIDTH, hidden=(LAYER_WIDTH,) * HIDDEN_LAYERS,
                num_classes=16, rng=np.random.default_rng(0))
    manifest = save_model(model, path, fmt="fixed(16,13)", version=1)

    tracemalloc.start()
    try:
        tracemalloc.reset_peak()
        state, _manifest = load_state(path)
        _current, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()

    decoded_nbytes = sum(array.nbytes for array in state.values())
    additional = peak - decoded_nbytes
    assert additional >= manifest["blob_nbytes"]


def test_truncated_file_names_the_offending_segment(large_artifact, tmp_path):
    path, manifest = large_artifact
    data = open(path, "rb").read()
    # Cut mid-way through the blob: the error must name the first tensor
    # whose segment no longer fits, not just say "bad file".
    rows = segment_table(path)
    victim = rows[len(rows) // 2]
    cut = victim["file_offset"] + victim["nbytes"] // 2
    bad = tmp_path / "trunc.rpak"
    bad.write_bytes(data[:cut])
    with pytest.raises(ArtifactError) as excinfo:
        load_state(bad)
    assert "truncated" in str(excinfo.value)
    assert repr(victim["name"]) in str(excinfo.value)


def test_truncation_inside_the_last_segment_is_still_named(large_artifact,
                                                           tmp_path):
    path, _manifest = large_artifact
    data = open(path, "rb").read()
    last = segment_table(path)[-1]
    bad = tmp_path / "tail.rpak"
    bad.write_bytes(data[:-3])
    with pytest.raises(ArtifactError, match=repr(last["name"])):
        load_state(bad)


def test_extra_trailing_bytes_rejected(large_artifact, tmp_path):
    path, _manifest = large_artifact
    bad = tmp_path / "padded.rpak"
    bad.write_bytes(open(path, "rb").read() + b"\x00\x00")
    with pytest.raises(ArtifactError, match="length mismatch"):
        load_state(bad)


def test_artifact_info_verifies_segments_without_decoding(large_artifact,
                                                          tmp_path):
    """``artifact_info`` streams the checksums: bounded memory, and it
    still catches a flipped byte anywhere in the blob."""
    path, manifest = large_artifact
    tracemalloc.start()
    try:
        tracemalloc.reset_peak()
        info = artifact_info(path)
        _current, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    assert info["blob_nbytes"] == manifest["blob_nbytes"]
    assert peak < 0.75 * manifest["blob_nbytes"]

    data = bytearray(open(path, "rb").read())
    data[-1] ^= 0x01
    bad = tmp_path / "flipped.rpak"
    bad.write_bytes(bytes(data))
    with pytest.raises(ArtifactError, match="checksum mismatch"):
        artifact_info(bad)


def test_streamed_state_loads_into_the_model(large_artifact):
    path, _manifest = large_artifact
    model = MLP(LAYER_WIDTH, hidden=(LAYER_WIDTH,) * HIDDEN_LAYERS,
                num_classes=16, rng=np.random.default_rng(1))
    state, _ = load_state(path)
    model.load_state_dict(state)
    for name, param in model.named_parameters():
        assert np.array_equal(param.data, state[name]), name
    assert os.path.getsize(path) < 4 * 1024 * 1024  # the fixture stays small
