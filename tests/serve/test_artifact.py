"""Tests for the packed artifact format: round trips, size, corruption."""

import json
import os
import pickle
import struct

import numpy as np
import pytest

from repro.core.inference import quantize_model_weights
from repro.formats import available_formats, parse_format
from repro.models import MLP
from repro.serve import (
    ArtifactError,
    artifact_info,
    fp32_state_nbytes,
    load_model,
    load_state,
    save_model,
)
from repro.serve.artifact import MAGIC


def tiny_model(seed=0, hidden=(6,)):
    return MLP(4, hidden=hidden, num_classes=3,
               rng=np.random.default_rng(seed))


# --------------------------------------------------------------------- #
# Round trips
# --------------------------------------------------------------------- #
def unique_registry_formats():
    """One instance per distinct registered format (aliases collapse)."""
    seen = {}
    for fmt in available_formats().values():
        seen.setdefault(fmt.spec(), fmt)
    return sorted(seen.values(), key=lambda fmt: fmt.spec())


@pytest.mark.parametrize("fmt", unique_registry_formats(),
                         ids=lambda fmt: fmt.spec())
def test_round_trip_every_registry_format(tmp_path, fmt):
    """Decoded weights match the reference scaled quantization, bit for bit."""
    model = tiny_model()
    path = tmp_path / "model.rpak"
    save_model(model, path, fmt=fmt)

    reference = tiny_model()
    scales = quantize_model_weights(reference, fmt, rounding="nearest",
                                    use_scaling=True)
    state, manifest = load_state(path)
    assert manifest["format"] == fmt.spec()
    for name, param in reference.named_parameters():
        assert np.array_equal(state[name], param.data), name
        assert scales[name] == next(t["scale"] for t in manifest["tensors"]
                                    if t["name"] == name)


@pytest.mark.parametrize("spec", ["posit(8,1)", "posit(6,1)", "posit(5,2)",
                                  "float(3,1)", "fixed(8,5)"])
def test_save_load_save_is_bit_identical(tmp_path, spec):
    """Re-exporting a loaded model reproduces the file byte for byte.

    Exercises odd widths whose packing is sub-byte: the decode->encode
    composition is the identity on the format's grid, provided the
    manifest's recorded scales are reused (recomputing Eq. (2) on the
    quantized weights may round to a different center).
    """
    model = tiny_model(seed=3)
    first = tmp_path / "a.rpak"
    second = tmp_path / "b.rpak"
    manifest = save_model(model, first, fmt=spec)
    reloaded, _manifest = load_model(first, model=tiny_model(seed=9))
    save_model(reloaded, second, fmt=spec,
               scales={t["name"]: t["scale"] for t in manifest["tensors"]})
    assert first.read_bytes() == second.read_bytes()


def test_manifest_rebuilds_model_without_caller_help(tmp_path):
    model = tiny_model(seed=5)
    path = tmp_path / "model.rpak"
    save_model(model, path, fmt="posit(8,1)",
               model_info={"model": "mlp", "model_kwargs": {"hidden": [6]},
                           "num_classes": 3, "in_features": 4, "seed": 5})
    rebuilt, manifest = load_model(path)
    state, _ = load_state(path)
    for name, param in rebuilt.named_parameters():
        assert np.array_equal(param.data, state[name])
    assert rebuilt.training is False


def test_buffers_round_trip_as_fp32(tmp_path):
    from repro.models import tiny_resnet

    model = tiny_resnet(num_classes=4, rng=np.random.default_rng(0))
    # Give the BN running stats non-trivial values.
    for name, buffer in model.named_buffers():
        np.asarray(buffer)[...] = np.random.default_rng(1).normal(
            size=np.asarray(buffer).shape)
    path = tmp_path / "resnet.rpak"
    save_model(model, path, fmt="posit(16,1)")
    state, manifest = load_state(path)
    for name, buffer in model.named_buffers():
        stored = np.asarray(buffer, dtype=np.float32).astype(np.float64)
        assert np.array_equal(state[name], stored), name
    kinds = {t["name"]: t["kind"] for t in manifest["tensors"]}
    assert any(kind == "buffer" for kind in kinds.values())


# --------------------------------------------------------------------- #
# The memory-savings claim
# --------------------------------------------------------------------- #
def test_packed_artifact_beats_fp32_pickle(tmp_path):
    """posit(8,1) artifact < FP32 pickle of the same state (§V claim)."""
    model = MLP(32, hidden=(64, 32), num_classes=10,
                rng=np.random.default_rng(0))
    path = tmp_path / "model.rpak"
    save_model(model, path, fmt="posit(8,1)")
    fp32_pickle = pickle.dumps({name: np.asarray(value, dtype=np.float32)
                                for name, value in model.state_dict().items()})
    artifact_bytes = os.path.getsize(path)
    assert artifact_bytes < len(fp32_pickle)
    assert artifact_bytes < fp32_state_nbytes(model)
    # The blob itself is a strict 4x win; the manifest is the only overhead.
    manifest = artifact_info(path)
    assert manifest["blob_nbytes"] * 4 <= fp32_state_nbytes(model) + 4


@pytest.mark.parametrize("spec,ratio", [("posit(8,1)", 4.0), ("posit(16,1)", 2.0),
                                        ("posit(6,1)", 32 / 6)])
def test_blob_size_matches_bit_width(tmp_path, spec, ratio):
    model = MLP(32, hidden=(64,), num_classes=10, rng=np.random.default_rng(0))
    path = tmp_path / "model.rpak"
    manifest = save_model(model, path, fmt=spec)
    params = sum(p.size for p in model.parameters())
    assert manifest["blob_nbytes"] == pytest.approx(4 * params / ratio, abs=8)


# --------------------------------------------------------------------- #
# Corruption rejection
# --------------------------------------------------------------------- #
@pytest.fixture
def saved(tmp_path):
    model = tiny_model()
    path = tmp_path / "model.rpak"
    save_model(model, path, fmt="posit(8,1)")
    return path


def test_bad_magic_rejected(saved):
    data = saved.read_bytes()
    saved.write_bytes(b"XXXX" + data[4:])
    with pytest.raises(ArtifactError, match="bad magic"):
        artifact_info(saved)


def test_unsupported_version_rejected(saved):
    data = bytearray(saved.read_bytes())
    data[len(MAGIC)] = 99
    saved.write_bytes(bytes(data))
    with pytest.raises(ArtifactError, match="version"):
        artifact_info(saved)


def test_corrupted_manifest_json_rejected(saved):
    data = bytearray(saved.read_bytes())
    data[len(MAGIC) + 5 + 2] ^= 0xFF  # flip a byte inside the JSON
    saved.write_bytes(bytes(data))
    with pytest.raises(ArtifactError):
        artifact_info(saved)


def test_flipped_blob_bit_rejected(saved):
    data = bytearray(saved.read_bytes())
    data[-1] ^= 0x01
    saved.write_bytes(bytes(data))
    with pytest.raises(ArtifactError, match="checksum"):
        load_state(saved)


def test_truncated_file_rejected(saved):
    data = saved.read_bytes()
    saved.write_bytes(data[:len(data) // 2])
    with pytest.raises(ArtifactError):
        load_state(saved)


def test_tensor_offsets_validated(tmp_path):
    model = tiny_model()
    path = tmp_path / "model.rpak"
    save_model(model, path, fmt="posit(8,1)")
    # Rewrite the manifest so a tensor points outside the blob, re-deriving
    # lengths and the (valid) checksum — only the offset check can catch it.
    data = path.read_bytes()
    header = len(MAGIC) + 1 + 4
    (manifest_len,) = struct.unpack_from("<I", data, len(MAGIC) + 1)
    manifest = json.loads(data[header:header + manifest_len])
    blob = data[header + manifest_len:]
    manifest["tensors"][0]["offset"] = len(blob)
    raw = json.dumps(manifest, sort_keys=True).encode()
    path.write_bytes(MAGIC + struct.pack("<B", 1) + struct.pack("<I", len(raw))
                     + raw + blob)
    with pytest.raises(ArtifactError, match="outside"):
        load_state(path)


def test_state_shape_mismatch_rejected(saved):
    wrong = MLP(5, hidden=(6,), num_classes=3, rng=np.random.default_rng(0))
    with pytest.raises(ArtifactError, match="does not fit"):
        load_model(saved, model=wrong)


def test_missing_model_block_is_actionable(saved):
    with pytest.raises(ArtifactError, match="load_state"):
        load_model(saved)


# --------------------------------------------------------------------- #
# v2: per-tensor formats + checksummed segments
# --------------------------------------------------------------------- #
def reference_state(model, specs, scales, rounding="nearest"):
    """Per-tensor reference quantization: what the artifact must decode to."""
    expected = {}
    for name, param in model.named_parameters():
        fmt = parse_format(specs[name])
        values = np.asarray(param.data, dtype=np.float64)
        scale = scales[name]
        codes = fmt.to_bits(values / scale, mode=rounding)
        expected[name] = (np.asarray(fmt.from_bits(codes), dtype=np.float64)
                          * scale).reshape(values.shape)
    return expected


def test_v2_manifest_shape(tmp_path):
    from repro.serve import ARTIFACT_MINOR_VERSION, ARTIFACT_VERSION

    manifest = save_model(tiny_model(), tmp_path / "m.rpak", fmt="posit(8,1)")
    assert manifest["version"] == ARTIFACT_VERSION == 2
    assert manifest["version_minor"] == ARTIFACT_MINOR_VERSION
    assert "blob_sha256" not in manifest  # integrity is per segment now
    for entry in manifest["tensors"]:
        assert len(entry["sha256"]) == 64
    assert (sum(entry["nbytes"] for entry in manifest["tensors"])
            == manifest["blob_nbytes"])


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_randomized_mixed_format_map_round_trip(tmp_path, seed):
    """Random ≥3-format maps: every tensor round-trips bit-identically on
    its own format grid, and re-export with recorded scales is
    byte-identical."""
    rng = np.random.default_rng(seed)
    formats = unique_registry_formats()
    model = tiny_model(seed=seed)
    names = [name for name, _ in model.named_parameters()]
    chosen = rng.choice(len(formats), size=3, replace=False)
    format_map = {name: formats[chosen[index % 3]].spec()
                  for index, name in enumerate(names)}
    assert len(set(format_map.values())) >= 3

    path = tmp_path / "mixed.rpak"
    manifest = save_model(model, path, format_map=format_map)
    specs = {t["name"]: t["format"] for t in manifest["tensors"]}
    scales = {t["name"]: t["scale"] for t in manifest["tensors"]}
    assert {specs[name] for name in names} == set(format_map.values())

    state, _ = load_state(path)
    expected = reference_state(model, specs, scales)
    for name in names:
        assert np.array_equal(state[name], expected[name]), name

    # save -> load -> save with the recorded scales: byte-identical file.
    reloaded, _ = load_model(path, model=tiny_model(seed=seed + 100))
    second = tmp_path / "again.rpak"
    save_model(reloaded, second,
               format_map=format_map,
               scales={name: scales[name] for name in names})
    assert path.read_bytes() == second.read_bytes()


def test_every_registry_format_participates_in_a_mixed_map(tmp_path):
    """Sweep the whole registry through mixed maps, three formats at a time."""
    formats = unique_registry_formats()
    model = tiny_model()
    names = [name for name, _ in model.named_parameters()]
    for start in range(0, len(formats), 3):
        chunk = formats[start:start + 3]
        format_map = {name: chunk[index % len(chunk)].spec()
                      for index, name in enumerate(names)}
        path = tmp_path / f"chunk{start}.rpak"
        manifest = save_model(model, path, fmt=chunk[0], format_map=format_map)
        specs = {t["name"]: t["format"] for t in manifest["tensors"]}
        scales = {t["name"]: t["scale"] for t in manifest["tensors"]}
        state, _ = load_state(path)
        expected = reference_state(model, specs, scales)
        for name in names:
            assert np.array_equal(state[name], expected[name]), (start, name)


def test_single_byte_corruption_rejected_in_every_segment(tmp_path):
    """Flip one byte inside each segment in turn: the load must fail with
    an error naming exactly that tensor."""
    from repro.serve import segment_table

    model = tiny_model()
    path = tmp_path / "m.rpak"
    save_model(model, path,
               format_map={"body.0.weight": "posit(6,1)",
                           "body.2.weight": "fixed(16,13)"})
    pristine = path.read_bytes()
    for row in segment_table(path):
        data = bytearray(pristine)
        data[row["file_offset"]] ^= 0x40
        bad = tmp_path / "bad.rpak"
        bad.write_bytes(bytes(data))
        with pytest.raises(ArtifactError) as excinfo:
            load_state(bad)
        assert "checksum mismatch" in str(excinfo.value)
        assert repr(row["name"]) in str(excinfo.value)


def test_format_map_exact_name_beats_pattern():
    from repro.serve import resolve_format_map

    resolved = resolve_format_map(
        ["body.0.weight", "body.0.bias", "body.2.weight"], "posit(8,1)",
        {"body.*": "fixed(16,13)", "body.0.weight": "posit(6,1)"})
    assert resolved["body.0.weight"].spec() == "posit(6,1)"
    assert resolved["body.0.bias"].spec() == "fixed(16,13)"
    assert resolved["body.2.weight"].spec() == "fixed(16,13)"


def test_format_map_patterns_first_match_wins():
    from repro.serve import resolve_format_map

    resolved = resolve_format_map(
        ["body.0.weight", "body.2.weight"], "posit(8,1)",
        {"body.0.*": "posit(16,1)", "body.*": "fixed(16,13)"})
    assert resolved["body.0.weight"].spec() == "posit(16,1)"
    assert resolved["body.2.weight"].spec() == "fixed(16,13)"


def test_format_map_unmatched_entry_rejected(tmp_path):
    with pytest.raises(ValueError, match="match no model tensor"):
        save_model(tiny_model(), tmp_path / "m.rpak",
                   format_map={"no.such.tensor": "posit(8,1)"})


def test_format_map_shadowed_entry_rejected_accurately():
    """A dead rule (every tensor it matches is claimed earlier) is refused
    with a diagnostic that says *shadowed*, not 'matches no tensor'."""
    from repro.serve import resolve_format_map

    with pytest.raises(ValueError, match="shadowed"):
        resolve_format_map(["body.0.weight"], "posit(8,1)",
                           {"body.*": "posit(8,1)",
                            "body.0.*": "posit(6,1)"})


def test_v1_writer_is_uniform_only(tmp_path):
    with pytest.raises(ValueError, match="uniform format"):
        save_model(tiny_model(), tmp_path / "m.rpak",
                   format_map={"body.0.weight": "posit(6,1)"}, version=1)
    with pytest.raises(ValueError, match="supported versions"):
        save_model(tiny_model(), tmp_path / "m.rpak", version=3)


def test_v1_writer_round_trips_through_v2_reader(tmp_path):
    model = tiny_model(seed=4)
    path = tmp_path / "v1.rpak"
    manifest = save_model(model, path, fmt="posit(8,1)", version=1)
    assert manifest["version"] == 1
    assert "blob_sha256" in manifest
    assert all("sha256" not in entry for entry in manifest["tensors"])
    state, loaded = load_state(path)
    assert loaded["version"] == 1
    for name, param in model.named_parameters():
        fmt = parse_format("posit(8,1)")
        scale = next(t["scale"] for t in manifest["tensors"]
                     if t["name"] == name)
        values = np.asarray(param.data, dtype=np.float64)
        codes = fmt.to_bits(values / scale, mode="nearest")
        expected = (np.asarray(fmt.from_bits(codes), dtype=np.float64)
                    * scale).reshape(values.shape)
        assert np.array_equal(state[name], expected), name


def test_iter_tensors_matches_load_state_for_both_versions(tmp_path):
    from repro.serve import iter_tensors

    model = tiny_model(seed=6)
    for version in (1, 2):
        path = tmp_path / f"v{version}.rpak"
        save_model(model, path, fmt="posit(8,1)", version=version)
        state, manifest = load_state(path)
        streamed = dict(iter_tensors(path))
        assert sorted(streamed) == sorted(state)
        assert [entry["name"] for entry in manifest["tensors"]] == list(streamed)
        for name, array in streamed.items():
            assert np.array_equal(array, state[name]), (version, name)


def test_segment_table_offsets_address_the_file(tmp_path):
    """``file_offset`` rows point at the exact packed bytes (mmap contract)."""
    import hashlib

    from repro.serve import segment_table

    model = tiny_model(seed=8)
    path = tmp_path / "m.rpak"
    save_model(model, path, format_map={"body.0.weight": "posit(6,1)"})
    data = path.read_bytes()
    for row in segment_table(path):
        segment = data[row["file_offset"]:row["file_offset"] + row["nbytes"]]
        assert hashlib.sha256(segment).hexdigest() == row["sha256"], row["name"]


def test_format_breakdown_accounts_for_every_byte(tmp_path):
    from repro.serve import format_breakdown

    manifest = save_model(tiny_model(), tmp_path / "m.rpak",
                          format_map={"body.0.weight": "posit(6,1)",
                                      "body.2.weight": "fixed(16,13)"})
    breakdown = format_breakdown(manifest)
    assert len(breakdown) >= 3
    assert (sum(row["nbytes"] for row in breakdown.values())
            == manifest["blob_nbytes"])
    assert (sum(row["tensors"] for row in breakdown.values())
            == len(manifest["tensors"]))
