"""Tests for the packed artifact format: round trips, size, corruption."""

import json
import os
import pickle
import struct

import numpy as np
import pytest

from repro.core.inference import quantize_model_weights
from repro.formats import available_formats, parse_format
from repro.models import MLP
from repro.serve import (
    ArtifactError,
    artifact_info,
    fp32_state_nbytes,
    load_model,
    load_state,
    save_model,
)
from repro.serve.artifact import MAGIC


def tiny_model(seed=0, hidden=(6,)):
    return MLP(4, hidden=hidden, num_classes=3,
               rng=np.random.default_rng(seed))


# --------------------------------------------------------------------- #
# Round trips
# --------------------------------------------------------------------- #
def unique_registry_formats():
    """One instance per distinct registered format (aliases collapse)."""
    seen = {}
    for fmt in available_formats().values():
        seen.setdefault(fmt.spec(), fmt)
    return sorted(seen.values(), key=lambda fmt: fmt.spec())


@pytest.mark.parametrize("fmt", unique_registry_formats(),
                         ids=lambda fmt: fmt.spec())
def test_round_trip_every_registry_format(tmp_path, fmt):
    """Decoded weights match the reference scaled quantization, bit for bit."""
    model = tiny_model()
    path = tmp_path / "model.rpak"
    save_model(model, path, fmt=fmt)

    reference = tiny_model()
    scales = quantize_model_weights(reference, fmt, rounding="nearest",
                                    use_scaling=True)
    state, manifest = load_state(path)
    assert manifest["format"] == fmt.spec()
    for name, param in reference.named_parameters():
        assert np.array_equal(state[name], param.data), name
        assert scales[name] == next(t["scale"] for t in manifest["tensors"]
                                    if t["name"] == name)


@pytest.mark.parametrize("spec", ["posit(8,1)", "posit(6,1)", "posit(5,2)",
                                  "float(3,1)", "fixed(8,5)"])
def test_save_load_save_is_bit_identical(tmp_path, spec):
    """Re-exporting a loaded model reproduces the file byte for byte.

    Exercises odd widths whose packing is sub-byte: the decode->encode
    composition is the identity on the format's grid, provided the
    manifest's recorded scales are reused (recomputing Eq. (2) on the
    quantized weights may round to a different center).
    """
    model = tiny_model(seed=3)
    first = tmp_path / "a.rpak"
    second = tmp_path / "b.rpak"
    manifest = save_model(model, first, fmt=spec)
    reloaded, _manifest = load_model(first, model=tiny_model(seed=9))
    save_model(reloaded, second, fmt=spec,
               scales={t["name"]: t["scale"] for t in manifest["tensors"]})
    assert first.read_bytes() == second.read_bytes()


def test_manifest_rebuilds_model_without_caller_help(tmp_path):
    model = tiny_model(seed=5)
    path = tmp_path / "model.rpak"
    save_model(model, path, fmt="posit(8,1)",
               model_info={"model": "mlp", "model_kwargs": {"hidden": [6]},
                           "num_classes": 3, "in_features": 4, "seed": 5})
    rebuilt, manifest = load_model(path)
    state, _ = load_state(path)
    for name, param in rebuilt.named_parameters():
        assert np.array_equal(param.data, state[name])
    assert rebuilt.training is False


def test_buffers_round_trip_as_fp32(tmp_path):
    from repro.models import tiny_resnet

    model = tiny_resnet(num_classes=4, rng=np.random.default_rng(0))
    # Give the BN running stats non-trivial values.
    for name, buffer in model.named_buffers():
        np.asarray(buffer)[...] = np.random.default_rng(1).normal(
            size=np.asarray(buffer).shape)
    path = tmp_path / "resnet.rpak"
    save_model(model, path, fmt="posit(16,1)")
    state, manifest = load_state(path)
    for name, buffer in model.named_buffers():
        stored = np.asarray(buffer, dtype=np.float32).astype(np.float64)
        assert np.array_equal(state[name], stored), name
    kinds = {t["name"]: t["kind"] for t in manifest["tensors"]}
    assert any(kind == "buffer" for kind in kinds.values())


# --------------------------------------------------------------------- #
# The memory-savings claim
# --------------------------------------------------------------------- #
def test_packed_artifact_beats_fp32_pickle(tmp_path):
    """posit(8,1) artifact < FP32 pickle of the same state (§V claim)."""
    model = MLP(32, hidden=(64, 32), num_classes=10,
                rng=np.random.default_rng(0))
    path = tmp_path / "model.rpak"
    save_model(model, path, fmt="posit(8,1)")
    fp32_pickle = pickle.dumps({name: np.asarray(value, dtype=np.float32)
                                for name, value in model.state_dict().items()})
    artifact_bytes = os.path.getsize(path)
    assert artifact_bytes < len(fp32_pickle)
    assert artifact_bytes < fp32_state_nbytes(model)
    # The blob itself is a strict 4x win; the manifest is the only overhead.
    manifest = artifact_info(path)
    assert manifest["blob_nbytes"] * 4 <= fp32_state_nbytes(model) + 4


@pytest.mark.parametrize("spec,ratio", [("posit(8,1)", 4.0), ("posit(16,1)", 2.0),
                                        ("posit(6,1)", 32 / 6)])
def test_blob_size_matches_bit_width(tmp_path, spec, ratio):
    model = MLP(32, hidden=(64,), num_classes=10, rng=np.random.default_rng(0))
    path = tmp_path / "model.rpak"
    manifest = save_model(model, path, fmt=spec)
    params = sum(p.size for p in model.parameters())
    assert manifest["blob_nbytes"] == pytest.approx(4 * params / ratio, abs=8)


# --------------------------------------------------------------------- #
# Corruption rejection
# --------------------------------------------------------------------- #
@pytest.fixture
def saved(tmp_path):
    model = tiny_model()
    path = tmp_path / "model.rpak"
    save_model(model, path, fmt="posit(8,1)")
    return path


def test_bad_magic_rejected(saved):
    data = saved.read_bytes()
    saved.write_bytes(b"XXXX" + data[4:])
    with pytest.raises(ArtifactError, match="bad magic"):
        artifact_info(saved)


def test_unsupported_version_rejected(saved):
    data = bytearray(saved.read_bytes())
    data[len(MAGIC)] = 99
    saved.write_bytes(bytes(data))
    with pytest.raises(ArtifactError, match="version"):
        artifact_info(saved)


def test_corrupted_manifest_json_rejected(saved):
    data = bytearray(saved.read_bytes())
    data[len(MAGIC) + 5 + 2] ^= 0xFF  # flip a byte inside the JSON
    saved.write_bytes(bytes(data))
    with pytest.raises(ArtifactError):
        artifact_info(saved)


def test_flipped_blob_bit_rejected(saved):
    data = bytearray(saved.read_bytes())
    data[-1] ^= 0x01
    saved.write_bytes(bytes(data))
    with pytest.raises(ArtifactError, match="checksum"):
        load_state(saved)


def test_truncated_file_rejected(saved):
    data = saved.read_bytes()
    saved.write_bytes(data[:len(data) // 2])
    with pytest.raises(ArtifactError):
        load_state(saved)


def test_tensor_offsets_validated(tmp_path):
    model = tiny_model()
    path = tmp_path / "model.rpak"
    save_model(model, path, fmt="posit(8,1)")
    # Rewrite the manifest so a tensor points outside the blob, re-deriving
    # lengths and the (valid) checksum — only the offset check can catch it.
    data = path.read_bytes()
    header = len(MAGIC) + 1 + 4
    (manifest_len,) = struct.unpack_from("<I", data, len(MAGIC) + 1)
    manifest = json.loads(data[header:header + manifest_len])
    blob = data[header + manifest_len:]
    manifest["tensors"][0]["offset"] = len(blob)
    raw = json.dumps(manifest, sort_keys=True).encode()
    path.write_bytes(MAGIC + struct.pack("<B", 1) + struct.pack("<I", len(raw))
                     + raw + blob)
    with pytest.raises(ArtifactError, match="outside"):
        load_state(path)


def test_state_shape_mismatch_rejected(saved):
    wrong = MLP(5, hidden=(6,), num_classes=3, rng=np.random.default_rng(0))
    with pytest.raises(ArtifactError, match="does not fit"):
        load_model(saved, model=wrong)


def test_missing_model_block_is_actionable(saved):
    with pytest.raises(ArtifactError, match="load_state"):
        load_model(saved)
