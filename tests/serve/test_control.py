"""Deterministic tests for the adaptive control plane.

:mod:`repro.serve.control` is designed to be tested without time or
processes: the :class:`Controller` takes an injectable clock and a plant
object, so every test here drives :meth:`Controller.tick` directly with a
fake clock and scripted observations — AIMD convergence, scale-up under
sustained queue depth, the immediate core-count cap (the recorded
1-vs-2-worker single-core regression), hysteresis, and cooldown are all
asserted tick by tick.  The rolling-window metrics collector gets the same
treatment with a fake monotonic clock.
"""

import pytest

from repro.serve import (
    ControlConfig,
    Controller,
    MetricsCollector,
    classify_load,
    merge_snapshots,
    render_prometheus,
)
from repro.serve.control import load_state


class FakeClock:
    """Deterministic monotonic clock; tests advance it explicitly."""

    def __init__(self, start: float = 0.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> float:
        self.now += seconds
        return self.now


class FakePlant:
    """Scripted plant: records every actuation the controller makes."""

    def __init__(self, workers: int = 1, max_wait_ms: float = 2.0):
        self.workers = workers
        self.max_wait_ms = max_wait_ms
        self.wait_history: list[float] = []
        self.scale_calls: list[int] = []

    def observe(self):
        return None  # tests pass observations to tick() directly

    def get_max_wait_ms(self) -> float:
        return self.max_wait_ms

    def set_max_wait_ms(self, value: float) -> None:
        self.max_wait_ms = value
        self.wait_history.append(value)

    def scale_to(self, target: int) -> int:
        delta = target - self.workers
        self.workers = target
        self.scale_calls.append(target)
        return delta


def observation(workers=1, queue_depth=0, queue_capacity=100, p99_ms=10.0,
                latency_samples=50, rejected=0.0):
    return {
        "queue_depth": queue_depth,
        "queue_capacity": queue_capacity,
        "p99_ms": p99_ms,
        "latency_samples": latency_samples,
        "arrival_rate_rps": 100.0,
        "completion_rate_rps": 100.0,
        "rejected_recent": rejected,
        "batch_occupancy": 0.5,
        "workers": workers,
        "workers_alive": workers,
    }


# --------------------------------------------------------------------- #
# load_state classification
# --------------------------------------------------------------------- #
class TestLoadState:
    def test_thresholds(self):
        assert load_state(0.0) == "ok"
        assert load_state(0.49) == "ok"
        assert load_state(0.5) == "busy"
        assert load_state(0.89) == "busy"
        assert load_state(0.9) == "overloaded"
        assert load_state(1.0) == "overloaded"

    def test_recent_rejects_dominate(self):
        # Any rejection in the window means clients are being shed — that
        # is overload even if the queue has drained since.
        assert load_state(0.0, recent_rejects=1) == "overloaded"

    def test_package_alias(self):
        # ``repro.serve.load_state`` is the artifact state loader, so the
        # classifier exports under ``classify_load`` — both names must
        # resolve to the same function.
        assert classify_load is load_state


# --------------------------------------------------------------------- #
# AIMD wait tuning
# --------------------------------------------------------------------- #
class TestWaitTuning:
    def controller(self, plant, **overrides):
        config = ControlConfig(slo_p99_ms=50.0, wait_additive_ms=0.5,
                               wait_backoff=0.5, wait_max_ms=20.0,
                               autoscale=False, **overrides)
        return Controller(plant, config, clock=FakeClock(), cpu_count=4)

    def test_additive_increase_under_headroom(self):
        plant = FakePlant(max_wait_ms=2.0)
        controller = self.controller(plant)
        decision = controller.tick(observation(p99_ms=10.0))
        assert decision["max_wait_ms"] == pytest.approx(2.5)
        assert decision["wait_reason"] == "p99-under-headroom"
        assert plant.max_wait_ms == pytest.approx(2.5)

    def test_multiplicative_decrease_over_slo(self):
        plant = FakePlant(max_wait_ms=8.0)
        controller = self.controller(plant)
        decision = controller.tick(observation(p99_ms=80.0))
        assert decision["max_wait_ms"] == pytest.approx(4.0)
        assert decision["wait_reason"] == "p99-over-slo"

    def test_dead_band_between_headroom_and_slo(self):
        # p99 in [headroom * SLO, SLO] is "converged": no actuation.
        plant = FakePlant(max_wait_ms=8.0)
        controller = self.controller(plant)
        decision = controller.tick(observation(p99_ms=40.0))
        assert "max_wait_ms" not in decision
        assert plant.wait_history == []

    def test_no_tuning_without_latency_samples(self):
        # A freshly started engine has no p99 yet; tuning on the default
        # 0.0 would grow the wait forever.
        plant = FakePlant(max_wait_ms=2.0)
        controller = self.controller(plant)
        controller.tick(observation(p99_ms=0.0, latency_samples=0))
        assert plant.wait_history == []

    def test_converges_into_slo_band(self):
        # Scripted plant where p99 tracks the wait: start way over SLO,
        # AIMD must converge into the [headroom*SLO, SLO] band and hold.
        plant = FakePlant(max_wait_ms=16.0)
        controller = self.controller(plant)
        for _ in range(50):
            # A toy latency model: p99 rises with the coalescing wait.
            p99 = 30.0 + 4.0 * plant.max_wait_ms
            controller.tick(observation(p99_ms=p99))
        final_p99 = 30.0 + 4.0 * plant.max_wait_ms
        assert final_p99 <= 50.0
        assert final_p99 >= 0.7 * 50.0 - 4.0 * 0.5  # within one step of band

    def test_respects_wait_bounds(self):
        plant = FakePlant(max_wait_ms=19.9)
        controller = self.controller(plant)
        controller.tick(observation(p99_ms=10.0))
        assert plant.max_wait_ms == pytest.approx(20.0)  # clamped at max
        plant_low = FakePlant(max_wait_ms=0.01)
        controller = self.controller(plant_low)
        for _ in range(10):
            controller.tick(observation(p99_ms=500.0))
        assert plant_low.max_wait_ms >= 0.0

    def test_tune_wait_disabled(self):
        plant = FakePlant(max_wait_ms=2.0)
        controller = self.controller(plant, tune_wait=False)
        controller.tick(observation(p99_ms=10.0))
        assert plant.wait_history == []


# --------------------------------------------------------------------- #
# Autoscaling
# --------------------------------------------------------------------- #
class TestAutoscaling:
    def controller(self, plant, cpu_count=4, **overrides):
        kwargs = dict(min_workers=1, max_workers=4, hysteresis_ticks=3,
                      cooldown_ticks=6, tune_wait=False)
        kwargs.update(overrides)
        return Controller(plant, ControlConfig(**kwargs),
                          clock=FakeClock(), cpu_count=cpu_count)

    def test_scale_up_on_sustained_queue_depth(self):
        plant = FakePlant(workers=1)
        controller = self.controller(plant)
        busy = lambda: observation(workers=plant.workers, queue_depth=60)
        controller.tick(busy())
        controller.tick(busy())
        assert plant.scale_calls == []  # hysteresis: not yet
        decision = controller.tick(busy())
        assert plant.scale_calls == [2]
        assert decision["scaled"]["reason"] == "sustained-queue-depth"

    def test_one_transient_spike_does_not_scale(self):
        plant = FakePlant(workers=1)
        controller = self.controller(plant)
        controller.tick(observation(workers=1, queue_depth=60))
        controller.tick(observation(workers=1, queue_depth=60))
        controller.tick(observation(workers=1, queue_depth=10))  # resets
        controller.tick(observation(workers=1, queue_depth=60))
        controller.tick(observation(workers=1, queue_depth=60))
        assert plant.scale_calls == []

    def test_core_cap_applies_immediately(self):
        # The recorded regression: 2 workers on 1 core is slower than 1
        # worker.  No hysteresis for physics — first tick scales down.
        plant = FakePlant(workers=2)
        controller = self.controller(plant, cpu_count=1)
        decision = controller.tick(observation(workers=2, queue_depth=0))
        assert plant.scale_calls == [1]
        assert decision["scaled"]["reason"] == "over-core-cap"

    def test_cap_never_exceeded_by_scale_up(self):
        plant = FakePlant(workers=1)
        controller = self.controller(plant, cpu_count=1)
        for _ in range(20):
            controller.tick(observation(workers=plant.workers, queue_depth=90))
        assert plant.scale_calls == []  # would scale up, but cap is 1

    def test_scale_down_on_sustained_idle(self):
        plant = FakePlant(workers=3)
        controller = self.controller(plant)
        idle = lambda: observation(workers=plant.workers, queue_depth=0)
        for _ in range(3):
            controller.tick(idle())
        assert plant.scale_calls == [2]

    def test_cooldown_prevents_flapping(self):
        plant = FakePlant(workers=1)
        controller = self.controller(plant)
        busy = lambda: observation(workers=plant.workers, queue_depth=60)
        idle = lambda: observation(workers=plant.workers, queue_depth=0)
        for _ in range(3):
            controller.tick(busy())
        assert plant.scale_calls == [2]
        # Queue drains instantly after the scale-up; without cooldown the
        # controller would immediately retire the worker it just added.
        for _ in range(6):
            controller.tick(idle())
        assert plant.scale_calls == [2]  # cooldown held
        for _ in range(3):
            controller.tick(idle())
        assert plant.scale_calls == [2, 1]  # then evidence re-accumulates

    def test_mid_band_utilization_resets_counters(self):
        plant = FakePlant(workers=2)
        controller = self.controller(plant)
        for _ in range(2):
            controller.tick(observation(workers=2, queue_depth=0))
        controller.tick(observation(workers=2, queue_depth=20))  # 0.2: mid
        for _ in range(2):
            controller.tick(observation(workers=2, queue_depth=0))
        assert plant.scale_calls == []

    def test_under_min_scales_up_immediately(self):
        plant = FakePlant(workers=1)
        controller = self.controller(plant, min_workers=2, max_workers=4)
        controller.tick(observation(workers=1))
        assert plant.scale_calls == [2]

    def test_autoscale_disabled(self):
        plant = FakePlant(workers=2)
        controller = self.controller(plant, autoscale=False, cpu_count=1)
        for _ in range(10):
            controller.tick(observation(workers=2, queue_depth=90))
        assert plant.scale_calls == []

    def test_worker_cap_property(self):
        plant = FakePlant()
        assert self.controller(plant, cpu_count=1).worker_cap == 1
        assert self.controller(plant, cpu_count=8).worker_cap == 4
        assert self.controller(plant, cpu_count=2).worker_cap == 2

    def test_no_observation_skips(self):
        plant = FakePlant()
        controller = self.controller(plant)
        decision = controller.tick()  # plant.observe() returns None
        assert decision["skipped"] == "no-observation"
        assert plant.scale_calls == []

    def test_describe_reports_events_and_cap(self):
        plant = FakePlant(workers=2)
        controller = self.controller(plant, cpu_count=1)
        controller.tick(observation(workers=2))
        described = controller.describe()
        assert described["worker_cap"] == 1
        assert described["cpu_count"] == 1
        assert described["scale_events"][-1]["reason"] == "over-core-cap"
        assert described["last_decision"]["tick"] == 1


class TestControlConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ControlConfig(slo_p99_ms=0)
        with pytest.raises(ValueError):
            ControlConfig(min_workers=0)
        with pytest.raises(ValueError):
            ControlConfig(min_workers=3, max_workers=2)
        with pytest.raises(ValueError):
            ControlConfig(wait_backoff=1.0)
        with pytest.raises(ValueError):
            ControlConfig(hysteresis_ticks=0)

    def test_to_dict_round_trips(self):
        config = ControlConfig(slo_p99_ms=25.0)
        assert ControlConfig(**config.to_dict()) == config


# --------------------------------------------------------------------- #
# Rolling-window metrics
# --------------------------------------------------------------------- #
class TestMetricsCollector:
    def test_counts_age_out_of_window(self):
        clock = FakeClock()
        metrics = MetricsCollector(window_s=10.0, buckets=10, clock=clock)
        metrics.count("arrivals", 5)
        assert metrics.count_in("arrivals", 10.0) == 5
        clock.advance(5.0)
        metrics.count("arrivals", 3)
        assert metrics.count_in("arrivals", 10.0) == 8
        clock.advance(6.0)  # first burst now outside the window
        assert metrics.count_in("arrivals", 10.0) == 3
        clock.advance(10.0)
        assert metrics.count_in("arrivals", 10.0) == 0
        # Lifetime totals never age.
        assert metrics.snapshot()["lifetime"]["arrivals"] == 8

    def test_rate_clamps_to_collector_lifetime(self):
        clock = FakeClock()
        metrics = MetricsCollector(window_s=10.0, clock=clock)
        clock.advance(2.0)
        metrics.count("completed", 10)
        # Only 2 s have elapsed — rate must divide by 2, not the window.
        assert metrics.rate("completed", 10.0) == pytest.approx(5.0)

    def test_latency_percentiles(self):
        clock = FakeClock()
        metrics = MetricsCollector(window_s=10.0, clock=clock)
        for ms in range(1, 101):
            metrics.observe("total", ms / 1000.0)
        cell = metrics.snapshot()["latency_ms"]["total"]
        assert cell["count"] == 100
        assert cell["p50"] == pytest.approx(50.0, abs=2.0)
        assert cell["p99"] == pytest.approx(99.0, abs=2.0)
        assert cell["max"] == pytest.approx(100.0)

    def test_gauges_track_last_mean_max(self):
        clock = FakeClock()
        metrics = MetricsCollector(window_s=10.0, clock=clock)
        for depth in (1.0, 5.0, 3.0):
            metrics.gauge("queue_depth", depth)
        cell = metrics.snapshot()["gauges"]["queue_depth"]
        assert cell["last"] == 3.0
        assert cell["max"] == 5.0
        assert cell["mean"] == pytest.approx(3.0)

    def test_merge_snapshots_across_workers(self):
        clock = FakeClock()
        first, second = (MetricsCollector(window_s=10.0, clock=clock)
                         for _ in range(2))
        first.count("completed", 10)
        second.count("completed", 20)
        first.observe("total", 0.010)
        second.observe("total", 0.030)
        merged = merge_snapshots([first.snapshot(), second.snapshot()])
        assert merged["counts"]["completed"] == 30
        assert merged["lifetime"]["completed"] == 30
        cell = merged["latency_ms"]["total"]
        assert cell["count"] == 2
        assert cell["max"] == pytest.approx(30.0)

    def test_render_prometheus_exposition(self):
        clock = FakeClock()
        metrics = MetricsCollector(window_s=10.0, clock=clock)
        metrics.count("arrivals", 4)
        metrics.observe("total", 0.005)
        metrics.gauge("queue_depth", 2.0)
        text = render_prometheus(metrics.snapshot(),
                                 extra={"workers": 3})
        assert "repro_serve_arrivals_total 4" in text
        assert 'repro_serve_latency_ms{stage="total",quantile="p99"}' in text
        assert "repro_serve_queue_depth 2" in text
        assert "repro_serve_workers 3" in text
        assert text.endswith("\n")


# --------------------------------------------------------------------- #
# Decision log (controller observability)
# --------------------------------------------------------------------- #
class TestDecisionLog:
    def controller(self, plant, **overrides):
        settings = dict(slo_p99_ms=50.0, wait_additive_ms=0.5,
                        wait_backoff=0.5, wait_max_ms=20.0,
                        hysteresis_ticks=1)
        settings.update(overrides)
        return Controller(plant, ControlConfig(**settings),
                          clock=FakeClock(), cpu_count=4)

    def test_wait_changes_logged_with_reason(self):
        plant = FakePlant(max_wait_ms=8.0)
        controller = self.controller(plant, autoscale=False)
        controller.tick(observation(p99_ms=80.0))
        (entry,) = controller.decision_log
        assert entry["action"] == "wait_backoff"
        assert entry["reason"] == "p99-over-slo"
        assert entry["from"] == pytest.approx(8.0)
        assert entry["to"] == pytest.approx(4.0)
        assert controller.decision_counts == {"wait_backoff": 1}

    def test_scale_moves_logged(self):
        plant = FakePlant(workers=1)
        controller = self.controller(plant, min_workers=1, max_workers=4,
                                     tune_wait=False)
        controller.tick(observation(workers=1, queue_depth=95))
        actions = [e["action"] for e in controller.decision_log]
        assert actions == ["scale_up"]
        entry = controller.decision_log[0]
        assert (entry["from"], entry["to"]) == (1, 2)
        assert entry["reason"] == "sustained-queue-depth"

    def test_quiet_ticks_log_nothing(self):
        plant = FakePlant(max_wait_ms=8.0)
        controller = self.controller(plant, autoscale=False)
        # p99 inside the [headroom, slo] band: no actuation, no entry.
        controller.tick(observation(p99_ms=45.0))
        assert len(controller.decision_log) == 0
        assert controller.decision_counts == {}

    def test_log_is_bounded(self):
        plant = FakePlant(max_wait_ms=1.0)
        controller = self.controller(plant, autoscale=False,
                                     wait_max_ms=1e9, wait_additive_ms=0.5)
        for _ in range(300):
            controller.tick(observation(p99_ms=1.0))
        assert len(controller.decision_log) == 256
        assert controller.decision_counts["wait_increase"] == 300

    def test_describe_exposes_decisions(self):
        plant = FakePlant(max_wait_ms=8.0)
        controller = self.controller(plant, autoscale=False)
        controller.tick(observation(p99_ms=80.0))
        described = controller.describe()
        assert described["decision_counts"] == {"wait_backoff": 1}
        assert described["decisions"][-1]["action"] == "wait_backoff"


# --------------------------------------------------------------------- #
# Prometheus exposition conformance
# --------------------------------------------------------------------- #
class TestPrometheusConformance:
    def render(self, **kwargs):
        clock = FakeClock()
        metrics = MetricsCollector(window_s=10.0, clock=clock)
        metrics.count("arrivals", 4)
        metrics.count("rejected", 1)
        metrics.observe("total", 0.005)
        metrics.gauge("queue_depth", 2.0)
        return render_prometheus(metrics.snapshot(), **kwargs)

    @staticmethod
    def families_of(text):
        helps, types, samples = set(), {}, set()
        for line in text.splitlines():
            if line.startswith("# HELP "):
                helps.add(line.split()[2])
            elif line.startswith("# TYPE "):
                _, _, family, kind = line.split()
                types[family] = kind
            elif line:
                name = line.split("{")[0].split(" ")[0]
                samples.add(name)
        return helps, types, samples

    def test_every_series_has_help_and_type(self):
        helps, types, samples = self.families_of(self.render())
        assert samples, "exposition must carry samples"
        for family in samples:
            assert family in helps, f"missing # HELP for {family}"
            assert family in types, f"missing # TYPE for {family}"

    def test_counter_vs_gauge_typing(self):
        _, types, _ = self.families_of(self.render(extra={"workers": 3}))
        assert types["repro_serve_arrivals_total"] == "counter"
        assert types["repro_serve_rejected_total"] == "counter"
        assert types["repro_serve_queue_depth"] == "gauge"
        assert types["repro_serve_latency_ms"] == "gauge"
        assert types["repro_serve_workers"] == "gauge"

    def test_help_and_type_precede_samples(self):
        text = self.render()
        seen_meta = set()
        for line in text.splitlines():
            if line.startswith("# HELP ") or line.startswith("# TYPE "):
                seen_meta.add(line.split()[2])
            elif line:
                family = line.split("{")[0].split(" ")[0]
                assert family in seen_meta, (
                    f"sample for {family} before its # HELP/# TYPE")

    def test_extra_families_appended(self):
        text = self.render(families=[{
            "name": "repro_controller_decisions_total",
            "type": "counter",
            "help": "controller actuations by action",
            "samples": [({"action": "scale_up"}, 2.0),
                        ({"action": "wait_backoff"}, 5.0)],
        }])
        assert ("# TYPE repro_controller_decisions_total counter"
                in text)
        assert ('repro_controller_decisions_total{action="scale_up"} 2'
                in text)
        assert ('repro_controller_decisions_total{action="wait_backoff"} 5'
                in text)
