"""Tests for the HTTP transport, the load generator, and the serve/export CLI."""

import json
import os
import urllib.request

import numpy as np
import pytest

from repro.api import ExperimentConfig
from repro.cli import main as cli_main
from repro.serve import (
    BatchingConfig,
    HTTPClient,
    InferenceEngine,
    LocalClient,
    ModelServer,
    ServeClientError,
    load_model,
    pick_best_record,
    run_load,
    serve_best,
    train_and_export,
)
from repro.sweeps import ResultStore


def small_config(**overrides) -> ExperimentConfig:
    base = dict(name="transport_test", dataset="blobs", model="mlp",
                policy="posit(8,1)", epochs=1, train_size=64, test_size=32,
                batch_size=16, num_classes=3, model_kwargs={"hidden": [16]})
    base.update(overrides)
    return ExperimentConfig(**base)


@pytest.fixture(scope="module")
def artifact(tmp_path_factory):
    path = tmp_path_factory.mktemp("transport") / "model.rpak"
    train_and_export(small_config(), path)
    return str(path)


@pytest.fixture
def server(artifact):
    engine = InferenceEngine(artifact, BatchingConfig(max_batch=16,
                                                      max_wait_ms=5.0))
    with ModelServer(engine) as running:
        yield running


@pytest.fixture
def samples():
    return np.random.default_rng(5).normal(size=(12, 2))


# --------------------------------------------------------------------- #
# HTTP endpoints
# --------------------------------------------------------------------- #
def test_healthz_and_stats(server):
    client = HTTPClient(server.url)
    health = client.healthz()
    assert health["status"] == "ok"
    assert health["format"] == "posit(8,1)"
    stats = client.stats()
    assert stats["requests"] == 0


def test_predict_matches_in_process(server, samples):
    client = HTTPClient(server.url)
    response = client.predict(samples[:5])
    direct = server.engine.predict_batch(samples[:5])
    assert np.array_equal(np.asarray(response["logits"]), direct)
    assert response["predictions"] == [int(np.argmax(row)) for row in direct]


def test_local_client_same_contract(server, samples):
    local = LocalClient(server.engine)
    http = HTTPClient(server.url)
    assert local.predict(samples[:3]) == http.predict(samples[:3])


def test_malformed_request_is_400(server):
    client = HTTPClient(server.url)
    with pytest.raises(ServeClientError) as excinfo:
        client._request("/predict", {"inputs": []})
    assert excinfo.value.status == 400
    request = urllib.request.Request(
        f"{server.url}/predict", data=b"{not json",
        headers={"Content-Type": "application/json"})
    with pytest.raises(urllib.error.HTTPError) as http_error:
        urllib.request.urlopen(request, timeout=10)
    assert http_error.value.code == 400


def test_unknown_path_is_404(server):
    with pytest.raises(ServeClientError) as excinfo:
        HTTPClient(server.url)._request("/nope")
    assert excinfo.value.status == 404


def test_concurrent_http_load(server, samples):
    """64 concurrent closed-loop HTTP clients: all 200s, batching engaged."""
    report = run_load(HTTPClient(server.url), samples, concurrency=64,
                      requests_per_client=2,
                      client_factory=lambda: HTTPClient(server.url))
    assert report["failed"] == 0, report["errors"]
    assert report["completed"] == 128
    assert report["throughput_rps"] > 0
    stats = server.engine.stats()
    assert stats["requests"] >= 128
    assert stats["mean_batch_size"] > 1.0


# --------------------------------------------------------------------- #
# serve_best over a sweep store
# --------------------------------------------------------------------- #
def fake_store(tmp_path, rows) -> ResultStore:
    store = ResultStore(tmp_path / "store.jsonl")
    for row in rows:
        store.append(row)
    return store


def record(run_id, accuracy=None, energy=None, status="ok", index=0):
    entry = {"run_id": run_id, "status": status, "index": index,
             "name": f"run/{run_id}",
             "config": small_config(name=f"run/{run_id}").to_dict()}
    if accuracy is not None:
        entry["metrics"] = {"final_val_accuracy": accuracy}
    if energy is not None:
        entry["energy"] = {"total_energy_uj": energy}
    return entry


def test_pick_best_record_objectives(tmp_path):
    store = fake_store(tmp_path, [
        record("a", accuracy=0.7, energy=3.0),
        record("b", accuracy=0.9, energy=5.0),
        record("c", accuracy=0.8, energy=1.0),
        record("d", accuracy=0.99, status="failed"),
    ])
    assert pick_best_record(store, "accuracy")["run_id"] == "b"
    assert pick_best_record(store, "energy")["run_id"] == "c"
    with pytest.raises(ValueError, match="unknown objective"):
        pick_best_record(store, "latency")


def test_pick_best_requires_metric(tmp_path):
    store = fake_store(tmp_path, [record("a", accuracy=0.7)])
    with pytest.raises(ValueError, match="collect_energy"):
        pick_best_record(store, "energy")


def test_serve_best_retrains_and_exports(tmp_path):
    store = fake_store(tmp_path, [record("a", accuracy=0.7),
                                  record("b", accuracy=0.9)])
    path = tmp_path / "best.rpak"
    manifest, winner = serve_best(store, path, objective="accuracy")
    assert winner["run_id"] == "b"
    assert manifest["metadata"]["sweep_run_id"] == "b"
    model, _ = load_model(path)
    logits = model(np.zeros((1, 2)))
    assert logits.data.shape == (1, 3)


# --------------------------------------------------------------------- #
# CLI: export + serve wiring
# --------------------------------------------------------------------- #
def test_cli_export_config_and_artifact(tmp_path, capsys):
    config_path = tmp_path / "exp.json"
    config_path.write_text(json.dumps(small_config().to_dict()))
    out = tmp_path / "model.rpak"
    code = cli_main(["export", "--config", str(config_path),
                     "--output", str(out)])
    assert code == 0
    assert os.path.getsize(out) > 0
    printed = capsys.readouterr().out
    assert "posit(8,1)" in printed
    model, manifest = load_model(out)
    assert manifest["metadata"]["final_val_accuracy"] is not None


def test_cli_export_store_best(tmp_path, capsys):
    store = fake_store(tmp_path, [record("a", accuracy=0.6),
                                  record("b", accuracy=0.8)])
    out = tmp_path / "best.rpak"
    code = cli_main(["export", "--store", store.path, "--output", str(out)])
    assert code == 0
    assert "run/b" in capsys.readouterr().out


def test_cli_export_format_map_mixed_precision(tmp_path, capsys):
    """``--format-map`` overrides land per tensor and are reported."""
    config_path = tmp_path / "exp.json"
    config_path.write_text(json.dumps(small_config().to_dict()))
    out = tmp_path / "mixed.rpak"
    code = cli_main(["export", "--config", str(config_path),
                     "--output", str(out),
                     "--format-map", "body.0.weight=posit(6,1)",
                     "--format-map", "body.2.bias=posit(16,1)"])
    assert code == 0
    printed = capsys.readouterr().out
    assert "per-tensor formats:" in printed
    assert "posit(6,1)" in printed
    from repro.serve import artifact_info

    manifest = artifact_info(out)
    specs = {t["name"]: t["format"] for t in manifest["tensors"]
             if t["kind"] == "param"}
    assert specs["body.0.weight"] == "posit(6,1)"
    assert specs["body.2.bias"] == "posit(16,1)"
    assert len(set(specs.values())) >= 3
    # The mixed artifact serves: engine stats expose the breakdown.
    engine = InferenceEngine(out)
    stats = engine.stats()
    assert stats["mixed_precision"] is True
    assert set(stats["formats"]) >= set(specs.values())


def test_cli_export_rejects_malformed_format_map(tmp_path, capsys):
    config_path = tmp_path / "exp.json"
    config_path.write_text(json.dumps(small_config().to_dict()))
    code = cli_main(["export", "--config", str(config_path),
                     "--output", str(tmp_path / "x.rpak"),
                     "--format-map", "not-a-mapping"])
    assert code == 2
    assert "NAME=SPEC" in capsys.readouterr().err


def test_cli_export_rejects_duplicate_format_map_name(tmp_path, capsys):
    config_path = tmp_path / "exp.json"
    config_path.write_text(json.dumps(small_config().to_dict()))
    code = cli_main(["export", "--config", str(config_path),
                     "--output", str(tmp_path / "x.rpak"),
                     "--format-map", "body.0.weight=posit(16,1)",
                     "--format-map", "body.0.weight=posit(6,1)"])
    assert code == 2
    assert "given twice" in capsys.readouterr().err


def test_cli_export_rejects_unmatched_format_map_entry(tmp_path, capsys):
    config_path = tmp_path / "exp.json"
    config_path.write_text(json.dumps(small_config().to_dict()))
    code = cli_main(["export", "--config", str(config_path),
                     "--output", str(tmp_path / "x.rpak"),
                     "--format-map", "no.such.tensor=posit(8,1)"])
    assert code == 2
    assert "match no model tensor" in capsys.readouterr().err


def test_cli_export_missing_config_errors(tmp_path, capsys):
    code = cli_main(["export", "--config", str(tmp_path / "nope.json"),
                     "--output", str(tmp_path / "x.rpak")])
    assert code == 2
    assert "error" in capsys.readouterr().err


def test_cli_serve_rejects_bad_artifact(tmp_path, capsys):
    bad = tmp_path / "bad.rpak"
    bad.write_bytes(b"not an artifact")
    code = cli_main(["serve", str(bad)])
    assert code == 2
    assert "bad magic" in capsys.readouterr().err


# --------------------------------------------------------------------- #
# Mixed policies export mixed artifacts by default
# --------------------------------------------------------------------- #
def test_export_mixed_policy_defaults_to_per_tensor_formats(tmp_path):
    """``cifar_paper`` (posit(8,1) CONV, posit(16,1) BN) exports its Table
    III role assignment without the caller enumerating tensors."""
    from repro.api import build_experiment
    from repro.nn import BatchNorm2d, Conv2d, Linear
    from repro.serve import export_experiment

    config = ExperimentConfig(name="mixed_default", dataset="cifar_like",
                              model="tiny_resnet", policy="cifar_paper",
                              epochs=1, train_size=16, test_size=8,
                              batch_size=8, num_classes=4)
    experiment = build_experiment(config)
    manifest = export_experiment(experiment, tmp_path / "mixed.rpak",
                                 calibrate=False, guardrail_samples=0)
    specs = {t["name"]: t["format"] for t in manifest["tensors"]
             if t["kind"] == "param"}
    by_module = dict(experiment.model.named_modules())
    for qualified, spec in specs.items():
        module = by_module[qualified.rsplit(".", 1)[0]]
        if isinstance(module, (Conv2d, Linear)):
            assert spec == "posit(8,1)", qualified
        elif isinstance(module, BatchNorm2d):
            assert spec == "posit(16,1)", qualified
    assert set(specs.values()) == {"posit(8,1)", "posit(16,1)"}
    # An explicit --format wins back the uniform export.
    uniform = export_experiment(experiment, tmp_path / "uniform.rpak",
                                fmt="posit(8,1)", calibrate=False,
                                guardrail_samples=0)
    assert {t["format"] for t in uniform["tensors"]
            if t["kind"] == "param"} == {"posit(8,1)"}


# --------------------------------------------------------------------- #
# Export must not disturb a live experiment's training policy
# --------------------------------------------------------------------- #
def test_export_preserves_attached_training_policy(tmp_path):
    from repro.api import build_experiment
    from repro.serve import export_experiment

    experiment = build_experiment(small_config())
    experiment.run()
    before = {name: module.quant
              for name, module in experiment.model.named_modules()}
    assert any(context is not None for context in before.values())
    export_experiment(experiment, tmp_path / "mid.rpak")
    after = {name: module.quant
             for name, module in experiment.model.named_modules()}
    assert after == before
    # Training can continue, still quantized, after an export.
    history = experiment.run(epochs=1)
    assert len(history) >= 1


# --------------------------------------------------------------------- #
# /metrics exposition + controller decisions over HTTP
# --------------------------------------------------------------------- #
class _StubController:
    """Just enough controller surface for the transport's /stats and
    /metrics integration: recorded decisions with counts by action."""

    def __init__(self):
        self.decision_counts = {"scale_up": 2, "wait_backoff": 5}

    def describe(self):
        return {"decision_counts": dict(self.decision_counts),
                "decisions": [{"tick": 1, "action": "scale_up",
                               "reason": "sustained-queue-depth",
                               "from": 1, "to": 2}]}


def test_metrics_content_type_and_families(server, samples):
    client = HTTPClient(server.url)
    client.predict([samples[0]])
    with urllib.request.urlopen(server.url + "/metrics",
                                timeout=30) as reply:
        assert reply.headers["Content-Type"] == "text/plain; version=0.0.4"
        exposition = reply.read().decode("utf-8")
    # Exposition-format conformance: every sampled family is announced
    # with # HELP and # TYPE before its first sample.
    announced = set()
    for line in exposition.splitlines():
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            announced.add(line.split()[2])
        elif line:
            family = line.split("{")[0].split(" ")[0]
            assert family in announced, f"{family} sampled before # HELP/# TYPE"
    assert "# TYPE repro_serve_arrivals_total counter" in exposition


def test_attached_controller_exposed(server, samples):
    server.attach_controller(_StubController())
    client = HTTPClient(server.url)
    client.predict([samples[0]])
    stats = client.stats()
    assert stats["controller"]["decision_counts"] == {
        "scale_up": 2, "wait_backoff": 5}
    assert stats["controller"]["decisions"][0]["action"] == "scale_up"
    exposition = client.metrics()
    assert "# TYPE repro_controller_decisions_total counter" in exposition
    assert 'repro_controller_decisions_total{action="scale_up"} 2' in exposition
    assert ('repro_controller_decisions_total{action="wait_backoff"} 5'
            in exposition)


# --------------------------------------------------------------------- #
# Load generator slow-request reporting
# --------------------------------------------------------------------- #
def test_run_load_slow_ms_reporting(artifact, samples):
    from repro.obs import TraceConfig

    with InferenceEngine(artifact, BatchingConfig(max_batch=16,
                                                  max_wait_ms=2.0),
                         tracing=TraceConfig(enabled=True)) as engine:
        client = LocalClient(engine)
        report = run_load(client, samples, concurrency=4,
                          requests_per_client=4, slow_ms=0.0)
    # Every request is "slow" at a 0 ms threshold, and each one carries
    # the trace id the traced serving path echoed back.
    assert report["slow_ms"] == 0.0
    assert report["slow"] == report["completed"] == 16
    assert 1 <= len(report["slow_trace_ids"]) <= 16
    for trace_id in report["slow_trace_ids"]:
        assert len(trace_id) == 32


def test_run_load_without_slow_ms_omits_fields(artifact, samples):
    with InferenceEngine(artifact, BatchingConfig(max_batch=16,
                                                  max_wait_ms=2.0)) as engine:
        report = run_load(LocalClient(engine), samples, concurrency=2,
                          requests_per_client=2)
    assert "slow" not in report
    assert "slow_trace_ids" not in report
