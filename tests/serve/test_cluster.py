"""Tests for the multi-worker serving tier (:mod:`repro.serve.cluster`).

Covers the supervisor's contract end to end: worker startup handshakes
(including the guardrail refusal path), round-robin + least-outstanding
dispatch, cross-worker bit-identity, aggregated stats, crash detection +
restart with transparent failover, clean drain on shutdown, and the HTTP
listener over the cluster.
"""

import os
import signal
import time

import numpy as np
import pytest
from artifact_tools import rewrite_manifest

from repro.api import ExperimentConfig
from repro.serve import (
    BatchingConfig,
    ClusterConfig,
    ClusterError,
    ClusterServer,
    GuardrailError,
    HTTPClient,
    InferenceEngine,
    ServeClientError,
    ServeCluster,
    run_load,
    train_and_export,
)

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


def small_config(**overrides) -> ExperimentConfig:
    base = dict(name="cluster_test", dataset="blobs", model="mlp",
                policy="posit(8,1)", epochs=1, train_size=64, test_size=32,
                batch_size=16, num_classes=3, model_kwargs={"hidden": [16]})
    base.update(overrides)
    return ExperimentConfig(**base)


@pytest.fixture(scope="module")
def artifact(tmp_path_factory):
    path = tmp_path_factory.mktemp("cluster") / "model.rpak"
    train_and_export(small_config(), path)
    return str(path)


@pytest.fixture
def cluster(artifact):
    with ServeCluster(artifact, ClusterConfig(workers=2),
                      batching=BatchingConfig(max_batch=16,
                                              max_wait_ms=2.0)) as running:
        yield running


@pytest.fixture
def samples():
    return np.random.default_rng(7).normal(size=(16, 2))


def wait_until(predicate, timeout_s: float = 30.0, interval_s: float = 0.05):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return False


# --------------------------------------------------------------------- #
# Lifecycle + dispatch
# --------------------------------------------------------------------- #
class TestClusterBasics:
    def test_start_brings_up_every_worker(self, cluster):
        health = cluster.healthz()
        assert health["status"] == "ok"
        assert health["alive"] == health["workers"] == 2
        assert health["guardrail"] == ["passed", "passed"]

    def test_predict_matches_in_process_engine(self, cluster, artifact,
                                               samples):
        engine = InferenceEngine(artifact)
        direct = engine.predict_batch(samples)
        payload = cluster.predict(list(samples))
        assert np.array_equal(np.asarray(payload["logits"]), direct)
        assert payload["predictions"] == [int(np.argmax(row))
                                          for row in direct]
        assert payload["worker"] in (0, 1)

    def test_bit_identity_across_workers(self, cluster, samples):
        """Same inputs, every worker, batched and single: one answer."""
        batched0 = np.asarray(cluster.predict_on(0, list(samples))["logits"])
        batched1 = np.asarray(cluster.predict_on(1, list(samples))["logits"])
        assert np.array_equal(batched0, batched1)
        singles = np.stack([
            np.asarray(cluster.predict_on(1, [sample])["logits"][0])
            for sample in samples])
        assert np.array_equal(batched0, singles)

    def test_round_robin_spreads_load(self, cluster, samples):
        for index in range(10):
            cluster.predict([samples[index % len(samples)]])
        stats = cluster.stats()
        assert sum(stats["dispatched"]) >= 10
        assert all(count > 0 for count in stats["dispatched"])

    def test_concurrent_load_hits_every_worker(self, cluster, samples):
        report = run_load(cluster, samples, concurrency=32,
                          requests_per_client=4)
        assert report["failed"] == 0, report["errors"]
        assert report["completed"] == 128
        assert set(report["served_by"]) == {0, 1}

    def test_stats_aggregate_across_workers(self, cluster, samples):
        run_load(cluster, samples, concurrency=16, requests_per_client=2)
        stats = cluster.stats()
        assert stats["alive"] == 2
        assert len(stats["per_worker"]) == 2
        assert stats["requests"] == sum(row["requests"]
                                        for row in stats["per_worker"])
        assert stats["requests"] >= 32
        assert stats["energy_uj_total"] > 0

    def test_malformed_sample_fails_only_its_request(self, cluster, samples):
        with pytest.raises(ValueError, match="input shape"):
            cluster.predict([np.zeros(5)])
        # The cluster is still healthy and serving afterwards.
        payload = cluster.predict([samples[0]])
        assert len(payload["logits"]) == 1

    def test_predict_after_stop_raises(self, artifact, samples):
        cluster = ServeCluster(artifact, ClusterConfig(workers=2))
        cluster.start()
        cluster.predict([samples[0]])
        cluster.stop()
        with pytest.raises(ClusterError, match="not running"):
            cluster.predict([samples[0]])

    def test_stop_is_idempotent(self, artifact):
        cluster = ServeCluster(artifact, ClusterConfig(workers=2)).start()
        cluster.stop()
        cluster.stop()


# --------------------------------------------------------------------- #
# Crash detection, restart, failover
# --------------------------------------------------------------------- #
class TestClusterSupervision:
    def test_killed_worker_is_restarted(self, artifact, samples):
        with ServeCluster(artifact, ClusterConfig(workers=2)) as cluster:
            victim_pid = cluster._handles[0].pid
            os.kill(victim_pid, signal.SIGKILL)
            assert wait_until(lambda: (cluster.healthz()["alive"] == 2
                                       and cluster.stats()["restarts"] >= 1))
            # The restarted worker re-ran the guardrail and serves again.
            assert cluster.healthz()["guardrail"] == ["passed", "passed"]
            payload = cluster.predict_on(0, [samples[0]])
            assert payload["worker"] == 0

    def test_kill_mid_load_is_invisible_to_clients(self, artifact, samples):
        """SIGKILL one worker under concurrent load: zero failed requests
        (in-flight requests fail over to the survivor) and the worker
        rejoins the rotation."""
        with ServeCluster(artifact, ClusterConfig(workers=2),
                          batching=BatchingConfig(max_batch=16,
                                                  max_wait_ms=2.0)) as cluster:
            import threading

            def assassin():
                time.sleep(0.05)
                os.kill(cluster._handles[0].pid, signal.SIGKILL)

            killer = threading.Thread(target=assassin, daemon=True)
            killer.start()
            report = run_load(cluster, samples, concurrency=32,
                              requests_per_client=16)
            killer.join()
            assert report["failed"] == 0, report["errors"]
            assert report["completed"] == 512
            # The kill may land anywhere relative to the load's tail, so
            # wait for the whole supervision cycle: death seen, worker
            # respawned, guardrail re-passed, back in rotation.
            assert wait_until(lambda: (cluster.stats()["restarts"] >= 1
                                       and cluster.healthz()["alive"] == 2))

    def test_restart_budget_is_finite(self, artifact):
        """A worker that keeps dying is given up on after max_restarts."""
        with ServeCluster(artifact,
                          ClusterConfig(workers=2, max_restarts=1)) as cluster:
            for _round in range(2):
                pid = None
                for handle in cluster._handles:
                    if handle.index == 0 and handle.state == "ready":
                        pid = handle.pid
                if pid is None:
                    break
                os.kill(pid, signal.SIGKILL)
                wait_until(lambda: cluster._handles[0].pid != pid
                           and cluster._handles[0].state == "ready",
                           timeout_s=10.0)
            assert wait_until(lambda: cluster.stats()["restarts"] == 1,
                              timeout_s=10.0)
            # Worker 1 still serves; the cluster reports degradation.
            assert wait_until(
                lambda: cluster.healthz()["status"] == "degraded")
            assert cluster.predict([np.zeros(2)])["worker"] == 1


# --------------------------------------------------------------------- #
# Guardrail refusal at cluster scale
# --------------------------------------------------------------------- #
class TestClusterGuardrail:
    def test_every_worker_refuses_corrupted_artifact(self, artifact,
                                                     tmp_path):
        def corrupt(manifest):
            manifest["guardrail"]["logits"][0][0] += 1.0

        bad = rewrite_manifest(artifact, str(tmp_path / "bad.rpak"), corrupt)
        cluster = ServeCluster(bad, ClusterConfig(workers=2))
        with pytest.raises(GuardrailError, match="every worker refused"):
            cluster.start()
        # No stray processes linger after the refused start.
        assert all(handle.process is None or not handle.process.is_alive()
                   for handle in cluster._handles)

    def test_missing_artifact_raises_cluster_error(self, tmp_path):
        cluster = ServeCluster(str(tmp_path / "nope.rpak"),
                               ClusterConfig(workers=2, start_timeout_s=30))
        with pytest.raises(ClusterError, match="no worker"):
            cluster.start()


# --------------------------------------------------------------------- #
# HTTP listener over the cluster
# --------------------------------------------------------------------- #
class TestClusterHTTP:
    @pytest.fixture
    def server(self, artifact):
        cluster = ServeCluster(artifact, ClusterConfig(workers=2),
                               batching=BatchingConfig(max_batch=16,
                                                       max_wait_ms=2.0))
        with ClusterServer(cluster) as running:
            yield running

    def test_healthz_reports_cluster_state(self, server):
        health = HTTPClient(server.url).healthz()
        assert health["status"] == "ok"
        assert health["alive"] == 2
        assert health["guardrail"] == ["passed", "passed"]

    def test_predict_parity_with_engine(self, server, artifact, samples):
        client = HTTPClient(server.url)
        response = client.predict(samples[:5])
        direct = InferenceEngine(artifact).predict_batch(samples[:5])
        assert np.array_equal(np.asarray(response["logits"]), direct)
        assert response["worker"] in (0, 1)

    def test_stats_are_aggregated(self, server, samples):
        client = HTTPClient(server.url)
        client.predict(samples[:4])
        stats = client.stats()
        assert stats["workers"] == 2
        assert len(stats["per_worker"]) == 2

    def test_http_load_spreads_over_workers(self, server, samples):
        report = run_load(HTTPClient(server.url), samples, concurrency=32,
                          requests_per_client=2,
                          client_factory=lambda: HTTPClient(server.url))
        assert report["failed"] == 0, report["errors"]
        assert set(report["served_by"]) == {0, 1}

    def test_bad_request_is_400(self, server):
        with pytest.raises(ServeClientError) as excinfo:
            HTTPClient(server.url).predict([np.zeros(9)])
        assert excinfo.value.status == 400
